"""Shared scaffolding for the leader-based baseline protocols.

All four baselines (WAN-Paxos, speculative PBFT, Zyzzyva, Zab) share the
same skeleton: a leader batches client requests (B = 20, Section 5.1.2),
assigns sequence numbers, drives one protocol-specific ordering exchange,
and replicas execute committed batches in order and reply to clients.  This
module factors that skeleton so each baseline module only implements its
ordering exchange -- which is exactly what differentiates them in the
paper's Figure 6.

The baselines authenticate with MACs only (no digital signatures), which is
what makes their CPU profile differ from XPaxos in Figure 8.

Leader change
-------------

Every baseline survives leader faults through the same three-part layer
(the pattern Paxos introduced, generalised here):

* **Suspicion**: a non-leader that receives a client's retransmitted
  request forwards it to the leader it believes in and arms an election
  timer; executing a new batch disarms it.  The timer expiring means the
  leader failed to commit a retried request in time.
* **Campaign**: the suspecting replica broadcasts a protocol-specific
  VIEW-CHANGE message for ``target = max(view, last target) + 1`` carrying
  its recovery state.  Replicas that see a campaign for a fresher view
  join it (broadcasting their own state).  The leader of the target view
  (``target mod n``) installs the view once it holds a
  :meth:`view_change_quorum` of VIEW-CHANGE messages, merges the carried
  state (:meth:`install_view`), and announces the new view; followers
  adopt it through :meth:`enter_view`.
* **Catch-up**: a recovering replica multicasts a :class:`SyncRequest`;
  peers answer with their committed suffix and, when the requester is too
  far behind to replay the log, an application snapshot
  (:class:`SyncReply`).  The same messages serve replicas that learn from
  a NEW-VIEW that their execution horizon is stale.

The protocol-specific pieces are the VIEW-CHANGE payload (what state a
replica reports) and the install step (how the new leader merges reported
state and resumes ordering); see the pbft/zyzzyva/zab modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.config import ClusterConfig
from repro.crypto.authenticators import MODELED_MAC, register
from repro.crypto.costs import CostModel
from repro.crypto.primitives import Digest, KeyStore, digest_of
from repro.net.network import Network
from repro.sim.core import Simulator
from repro.sim.process import Timer
from repro.smr.app import StateMachine
from repro.smr.log import CommitEntry, CommitLog
from repro.smr.messages import Batch, Reply, Request
from repro.smr.runtime import ReplicaBase, SmrClientBase


def register_modeled(message_class):
    """Bind a baseline message class to the modelled channel-MAC policy
    (CPU + wire bytes accounted at the transport, no real tokens)."""
    return register(message_class, MODELED_MAC)


@register_modeled
@dataclass(frozen=True)
class ClientRequestMsg:
    """Client -> leader request envelope (MAC-authenticated channel)."""

    request: Request


@register_modeled
@dataclass(frozen=True)
class GenericReply:
    """Replica -> client reply, protocol-agnostic."""

    replica: int
    view: int
    seqno: int
    timestamp: int
    client: int
    result: Any
    result_digest: Digest
    size_bytes: int = 0


@register_modeled
@dataclass(frozen=True)
class SyncRequest:
    """Recovering/lagging replica -> peers: send me what I missed."""

    sender: int
    executed_upto: int


@register_modeled
@dataclass(frozen=True)
class SyncReply:
    """Peer -> recovering replica: committed suffix plus, when the
    requester cannot replay the log contiguously, a state snapshot."""

    sender: int
    view: int
    executed_upto: int
    snapshot: Any
    entries: Tuple[Tuple[int, Batch], ...]


class PipelinedSequencer:
    """Leader-side batching and slot pipelining, shared by every protocol.

    One instance lives on each replica (baseline and XPaxos alike) and owns
    the queue of client requests awaiting a slot, the request-dedup set,
    the batch timer, and the pipeline window: the leader may have at most
    ``config.pipeline_depth`` slots issued but not yet executed.  When the
    window is full a flush parks instead of proposing; executing a slot
    re-opens the window and :meth:`pump` resumes the parked flush.  While
    the window never fills, the event sequence is identical to an
    unbounded pipeline -- which is what keeps byte-identical determinism
    goldens stable for workloads that never push the window.

    Slots re-proposed during a view change or ballot merge are *carried*
    state, not new issues: :meth:`carry_over` excludes everything up to
    the current ``sn`` from the window, so a fresh leader is never blocked
    on its own catch-up traffic.

    The host replica provides:

    * ``sn`` / ``ex`` attributes (highest issued / highest executed slot),
    * ``may_propose()`` -- whether this replica may cut batches right now,
    * ``propose(seqno, batch)`` -- start the protocol's ordering exchange.
    """

    def __init__(self, replica, may_propose: Callable[[], bool],
                 propose: Callable[[int, "Batch"], None]) -> None:
        self.replica = replica
        self.config = replica.config
        self._may_propose = may_propose
        self._propose = propose
        self.pending: List[Request] = []
        self.seen: set = set()
        self._timer = Timer(replica, self.flush, "batch")
        self._parked = False
        self._carried_upto = 0
        #: Flushes deferred because the window was full (statistics).
        self.stalls = 0

    # -- window -----------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Slots issued by this leader and not yet executed, excluding
        carried-over re-proposals."""
        replica = self.replica
        return replica.sn - max(replica.ex, self._carried_upto)

    def carry_over(self) -> None:
        """Exclude every slot up to the current ``sn`` from the window
        (called after a view install / ballot merge re-proposed them)."""
        self._carried_upto = max(self._carried_upto, self.replica.sn)

    # -- intake -----------------------------------------------------------
    def offer(self, request: Request) -> bool:
        """Enqueue one deduplicated request; cut a batch when full.

        Returns False when the request id was already seen.
        """
        if request.rid in self.seen:
            return False
        self.seen.add(request.rid)
        self.pending.append(request)
        if len(self.pending) >= self.config.batch_size:
            self.flush()
        elif not self._timer.armed:
            self._timer.start(self.config.batch_timeout_ms)
        return True

    # -- slot issue -------------------------------------------------------
    def flush(self) -> None:
        """Cut one batch, assign it the next slot, and propose it --
        unless the pipeline window is full, in which case the flush parks
        until :meth:`pump` re-opens it."""
        self._timer.stop()
        if not self.pending or not self._may_propose():
            return
        if self.in_flight >= self.config.pipeline_depth:
            self._parked = True
            self.stalls += 1
            return
        requests = tuple(self.pending[: self.config.batch_size])
        del self.pending[: len(requests)]
        batch = Batch(requests)
        self.replica.sn += 1
        self._propose(self.replica.sn, batch)
        if self.pending:
            self.replica.sim.call_soon(self.flush)

    def pump(self) -> None:
        """Resume a parked flush after execution advanced the window."""
        if self._parked:
            self._parked = False
            if self.pending:
                self.replica.sim.call_soon(self.flush)

    def kick(self) -> None:
        """Schedule a flush if anything is pending (leader-change entry
        points use this instead of calling :meth:`flush` inline)."""
        if self.pending:
            self.replica.sim.call_soon(self.flush)

    # -- leader-change housekeeping ---------------------------------------
    def stop_timer(self) -> None:
        """Disarm the batch timer (stepping out of the leader role)."""
        self._timer.stop()

    def drain(self) -> List[Request]:
        """Hand back (and forget) every queued request, un-marking their
        ids so retransmissions to a new leader are not dropped as dups."""
        pending, self.pending = self.pending, []
        for request in pending:
            self.seen.discard(request.rid)
        return pending

    def reset_seen(self, rids) -> None:
        """Replace the dedup set (a fresh leader rebuilds it from its
        committed log)."""
        self.seen = set(rids)


class BaselineReplica(ReplicaBase):
    """Skeleton replica: batching at the leader + ordered execution.

    Subclasses implement :meth:`propose_batch` (leader side) and their own
    message handlers, calling :meth:`commit_batch` when a slot becomes
    stable and :meth:`execute_ready` afterwards.
    """

    def __init__(self, replica_id: int, config: ClusterConfig,
                 sim: Simulator, network: Network, keystore: KeyStore,
                 app_factory: Callable[[], StateMachine], site: str,
                 cost_model: Optional[CostModel] = None) -> None:
        super().__init__(replica_id, config, sim, network, keystore,
                         app_factory, site, cost_model)
        self.view = 0
        self.sn = 0
        self.ex = 0
        self.commit_log = CommitLog()
        self.sequencer = PipelinedSequencer(
            self,
            may_propose=lambda: self.is_leader and not self.campaigning,
            propose=lambda seqno, batch: self.propose_batch(seqno, batch))
        self._last_reply: Dict[int, GenericReply] = {}
        self.on_commit_batch: Optional[Callable[[int, Batch], None]] = None
        # Leader-change state (see the module docstring).
        self._election_timer = Timer(self, self._on_election_timeout,
                                     "election")
        self._vc_gather_timer = Timer(self, self._on_vc_gather_timeout,
                                      "vc_gather")
        self._vc_msgs: Dict[int, Dict[int, Any]] = {}
        self._target_view = 0  # highest view this replica campaigned for
        self._gathering: Optional[int] = None
        self.elections_started = 0
        self.view_changes_completed = 0

    # -- role -----------------------------------------------------------
    @property
    def leader_id(self) -> int:
        """The leader of the current view (``view mod n``)."""
        assert self.config.n is not None
        return self.view % self.config.n

    @property
    def is_leader(self) -> bool:
        """Is this replica the leader of the current view?"""
        return self.replica_id == self.leader_id

    # -- message dispatch -------------------------------------------------
    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, ClientRequestMsg):
            self.handle_client_request(payload.request)
        elif isinstance(payload, SyncRequest):
            self._on_sync_request(payload)
        elif isinstance(payload, SyncReply):
            self._on_sync_reply(payload)
        else:
            self.on_protocol_message(src, payload)

    def on_protocol_message(self, src: str, payload: Any) -> None:
        """Handle one protocol-specific message. Subclasses implement."""
        raise NotImplementedError

    # -- batching at the leader ------------------------------------------
    def handle_client_request(self, request: Request) -> None:
        """Entry point for client requests: the leader batches; a
        non-leader answers from its reply cache, forwards to the leader,
        and arms the election timer (the leader may be down)."""
        if self.is_leader:
            self.receive_request(request)
            return
        cached = self._last_reply.get(request.client)
        if cached is not None and cached.timestamp >= request.timestamp:
            if cached.timestamp == request.timestamp:
                self.send_authenticated(f"c{request.client}", cached,
                                        size_bytes=cached.size_bytes)
            return
        self.send_authenticated(f"r{self.leader_id}",
                                ClientRequestMsg(request),
                                size_bytes=request.size_bytes)
        if self.supports_view_change() and not self._election_timer.armed:
            self._election_timer.start(self.config.request_retransmit_ms)

    def receive_request(self, request: Request) -> None:
        """Enqueue a client request for batching (leader only)."""
        if not self.is_leader:
            return
        cached = self._last_reply.get(request.client)
        if cached is not None and cached.timestamp >= request.timestamp:
            if cached.timestamp == request.timestamp:
                self.send_authenticated(f"c{request.client}", cached,
                                        size_bytes=cached.size_bytes)
            return
        self.sequencer.offer(request)

    def flush_batch(self) -> None:
        """Assign the next sequence number to a batch and propose it."""
        self.sequencer.flush()

    def propose_batch(self, seqno: int, batch: Batch) -> None:
        """Protocol-specific ordering exchange. Subclasses implement."""
        raise NotImplementedError

    # -- commit and execution ---------------------------------------------
    def commit_batch(self, seqno: int, batch: Batch) -> None:
        """Record a stable slot and execute anything now contiguous."""
        if seqno not in self.commit_log:
            self.commit_log.put(
                seqno, CommitEntry(seqno, self.view, batch, ()))
        self.execute_ready()

    def execute_ready(self) -> None:
        """Execute committed batches in order; subclass hook for replies."""
        progressed = False
        while True:
            entry = self.commit_log.get(self.ex + 1)
            if entry is None:
                break
            progressed = True
            # Execution progress means the current leader is doing its
            # job: call off any pending election.
            self._election_timer.stop()
            seqno = self.ex + 1
            results = []
            for request in entry.batch:
                results.append(self.app.execute(request.op))
                self.execution_trace.append((seqno, request.rid))
                self.committed_requests += 1
            self.ex = seqno
            if self.on_commit_batch is not None:
                self.on_commit_batch(seqno, entry.batch)
            self.after_execute(seqno, entry.batch, results)
            if seqno % self.config.checkpoint_period == 0:
                self.commit_log.truncate_to(
                    seqno - self.config.checkpoint_period)
        if progressed:
            self.sequencer.pump()

    def after_execute(self, seqno: int, batch: Batch,
                      results: List[Any]) -> None:
        """Called once per executed batch. Default: no-op."""

    def reply_to_clients(self, seqno: int, batch: Batch,
                         results: List[Any]) -> None:
        """Send one MAC-authenticated reply per request in the batch."""
        for request, result in zip(batch, results):
            # 64 nominal reply bytes: keeps the sender's modeled MAC cost
            # at the seed's charge_mac(64) (the policy charges over
            # size_bytes) and puts an honest reply size on the wire.
            reply = GenericReply(
                replica=self.replica_id, view=self.view, seqno=seqno,
                timestamp=request.timestamp, client=request.client,
                result=result, result_digest=digest_of(result),
                size_bytes=64)
            self._last_reply[request.client] = reply
            self.send_authenticated(f"c{request.client}", reply,
                                    size_bytes=reply.size_bytes)

    def batch_digest(self, batch: Batch) -> Digest:
        """Digest over the signed request bodies of a batch, charging CPU."""
        self.cpu.charge_digest(batch.size_bytes)
        return batch.bodies_digest()

    # -- leader change ----------------------------------------------------
    def supports_view_change(self) -> bool:
        """Does this protocol implement a leader-change path?"""
        return False

    def view_change_quorum(self) -> int:
        """VIEW-CHANGE messages needed to install a view (default:
        majority; BFT protocols override with ``2t + 1``)."""
        return self.config.quorum

    def new_leader_of(self, view: int) -> int:
        """Leader of ``view`` (round robin over all replicas)."""
        assert self.config.n is not None
        return view % self.config.n

    def make_view_change(self, target: int) -> Any:
        """Build this protocol's VIEW-CHANGE message for ``target``,
        carrying whatever state the new leader's merge needs."""
        raise NotImplementedError

    def view_change_size(self, message: Any) -> int:
        """Wire size of a VIEW-CHANGE message.  Subclasses account for
        the batches they embed; the default covers headers only."""
        return 256

    def install_view(self, target: int, msgs: Dict[int, Any]) -> None:
        """New-leader side: merge the quorum's VIEW-CHANGE state, announce
        the view, and resume ordering.  Runs with ``self.view == target``
        and protocol in-flight state already cleared."""
        raise NotImplementedError

    def on_enter_view(self, view: int) -> None:
        """Hook: drop per-view in-flight ordering state. Default no-op."""

    @property
    def campaigning(self) -> bool:
        """Between joining a campaign and its view installing.

        A frozen replica must stop proposing and stop accepting the old
        view's ordering messages: anything it speculatively adopted after
        reporting its state would be invisible to the new leader's merge
        and could be reassigned -- a total-order violation.
        """
        return self._target_view > self.view

    def _on_election_timeout(self) -> None:
        self.suspect_view(self.view)

    def suspect_view(self, view: int) -> None:
        """Campaign to replace the leader of ``view`` (also the hook the
        fault injector's ``suspect`` event calls)."""
        if not self.supports_view_change() or view < self.view:
            return
        self._campaign(max(self.view, self._target_view) + 1)

    def _campaign(self, target: int) -> None:
        """Broadcast our VIEW-CHANGE for ``target`` and join its tally."""
        self._target_view = target
        self.elections_started += 1
        message = self.make_view_change(target)
        size = self.view_change_size(message)
        self.multicast_authenticated(self.other_replica_names(), message,
                                     size_bytes=size)
        self._note_view_change(self.replica_id, target, message)
        # If this campaign stalls (its leader may be down too), escalate
        # to the next view on expiry.
        self._election_timer.start(self.config.view_change_timeout_ms)

    def on_view_change_msg(self, sender: int, target: int,
                           message: Any) -> None:
        """Called by subclasses for each received VIEW-CHANGE message."""
        if target <= self.view:
            return
        if self._target_view < target:
            # A fresher campaign is under way: join it with our state.
            self._campaign(target)
        self._note_view_change(sender, target, message)

    def _note_view_change(self, sender: int, target: int,
                          message: Any) -> None:
        msgs = self._vc_msgs.setdefault(target, {})
        msgs[sender] = message
        if target <= self.view \
                or self.new_leader_of(target) != self.replica_id:
            return
        assert self.config.n is not None
        if len(msgs) >= self.config.n:
            # Everyone reported: install immediately.
            self._vc_gather_timer.stop()
            self._gathering = None
            self._become_leader(target, dict(msgs))
        elif len(msgs) >= self.view_change_quorum() \
                and self._gathering != target:
            # Quorum reached: give stragglers -- above all the deposed
            # leader, whose log may hold slots it executed speculatively
            # that nobody else reported -- one Delta to contribute their
            # state before installing without them.
            self._gathering = target
            self._vc_gather_timer.start(self.config.delta_ms)

    def _on_vc_gather_timeout(self) -> None:
        target, self._gathering = self._gathering, None
        if target is None or target <= self.view:
            return
        msgs = self._vc_msgs.get(target, {})
        if len(msgs) >= self.view_change_quorum():
            self._become_leader(target, dict(msgs))

    def _become_leader(self, target: int, msgs: Dict[int, Any]) -> None:
        self.view = target
        self._target_view = max(self._target_view, target)
        self.view_changes_completed += 1
        self._election_timer.stop()
        self.sequencer.stop_timer()
        self._vc_msgs = {v: m for v, m in self._vc_msgs.items()
                         if v > target}
        self.on_enter_view(target)
        self.install_view(target, msgs)
        # Slots the install step re-proposed are carried state; they must
        # not count against the new leader's pipeline window.
        self.sequencer.carry_over()
        self.sequencer.kick()

    def enter_view(self, view: int) -> None:
        """Adopt a view whose leader already installed it."""
        if view <= self.view:
            return
        self.view = view
        self._target_view = max(self._target_view, view)
        self.view_changes_completed += 1
        self._election_timer.stop()
        self.sequencer.stop_timer()
        self._vc_msgs = {v: m for v, m in self._vc_msgs.items() if v > view}
        # Requests batched while we briefly believed ourselves leader
        # belong to the new leader now; un-mark them so retransmissions
        # are not dropped as duplicates.
        if not self.is_leader:
            for request in self.sequencer.drain():
                self.send_authenticated(f"r{self.leader_id}",
                                        ClientRequestMsg(request),
                                        size_bytes=request.size_bytes)
        self.on_enter_view(view)

    # -- recovery and catch-up --------------------------------------------
    def recover(self) -> None:
        """Rejoin after a crash: ask the peers for the current view and
        the committed suffix we missed."""
        super().recover()
        self.multicast_authenticated(self.other_replica_names(),
                                     SyncRequest(self.replica_id, self.ex),
                                     size_bytes=16)

    def request_sync(self, peer: int) -> None:
        """Ask one peer for the committed suffix above our horizon."""
        self.send_authenticated(f"r{peer}",
                                SyncRequest(self.replica_id, self.ex),
                                size_bytes=16)

    def _on_sync_request(self, m: SyncRequest) -> None:
        entries = tuple((sn, entry.batch)
                        for sn, entry in self.commit_log.items()
                        if sn > m.executed_upto)
        snapshot = self.app.snapshot() if self.ex > m.executed_upto else None
        size = sum(batch.size_bytes for _, batch in entries) + 64
        self.send_authenticated(
            f"r{m.sender}",
            SyncReply(self.replica_id, self.view, self.ex, snapshot,
                      entries),
            size_bytes=size)

    def _on_sync_reply(self, m: SyncReply) -> None:
        self.cpu.charge_mac(64)
        if m.view > self.view:
            self.enter_view(m.view)
        if m.executed_upto > self.ex and m.snapshot is not None:
            held = {sn for sn, _ in m.entries}
            replayable = all(sn in held or sn in self.commit_log
                             for sn in range(self.ex + 1,
                                             m.executed_upto + 1))
            if not replayable:
                # Too far behind to replay the log (the peers checkpointed
                # past our horizon): state transfer.
                self.app.restore(m.snapshot)
                self.ex = m.executed_upto
                self.sn = max(self.sn, self.ex)
        for sn, batch in m.entries:
            if sn > self.ex and sn not in self.commit_log:
                self.commit_log.put(
                    sn, CommitEntry(sn, self.view, batch, ()))
        self.execute_ready()


class QuorumClient(SmrClientBase):
    """Closed-loop client that commits on ``reply_quorum`` matching replies.

    ``reply_quorum = 1`` models CFT protocols where the leader's reply is
    authoritative (Paxos, Zab); BFT protocols need ``t + 1`` matching
    (PBFT) or all ``3t + 1`` speculative replies (Zyzzyva's fast path).
    """

    def __init__(self, client_id: int, config: ClusterConfig,
                 sim: Simulator, network: Network, keystore: KeyStore,
                 site: str, reply_quorum: int,
                 cost_model: Optional[CostModel] = None) -> None:
        super().__init__(client_id, config, sim, network, keystore, site,
                         cost_model)
        if reply_quorum < 1:
            raise ValueError("reply_quorum must be >= 1")
        self.reply_quorum = reply_quorum
        self.view = 0
        self._request: Optional[Request] = None
        self._sent_at = 0.0
        self._replies: Dict[int, GenericReply] = {}
        self._timer = Timer(self, self._on_timeout, "timer_c")
        self.on_result: Optional[Callable[[Any], None]] = None
        self.timeouts = 0

    @property
    def busy(self) -> bool:
        """True while a request is in flight."""
        return self._request is not None

    def leader_name(self) -> str:
        """Network name of the node the client sends to."""
        assert self.config.n is not None
        return f"r{self.view % self.config.n}"

    def propose(self, op: Any, size_bytes: int = 0) -> Request:
        """Invoke one operation (closed loop)."""
        if self._request is not None:
            raise RuntimeError(
                f"client {self.client_id} already has a request in flight")
        ts = self.next_timestamp()
        request = Request(op=op, timestamp=ts, client=self.client_id,
                          size_bytes=size_bytes, signature=None)
        self._request = request
        self._sent_at = self.sim.now
        self._replies.clear()
        self.send_authenticated(self.leader_name(),
                                ClientRequestMsg(request),
                                size_bytes=size_bytes)
        self._timer.start(self.config.request_retransmit_ms)
        return request

    def on_message(self, src: str, payload: Any) -> None:
        if not isinstance(payload, GenericReply):
            return
        request = self._request
        if request is None or payload.timestamp != request.timestamp:
            return
        self.cpu.charge_mac(64)
        if payload.view > self.view:
            # A leader change happened: follow the replies to the new
            # leader instead of waiting out a timeout per request.
            self.view = payload.view
        self._replies[payload.replica] = payload
        matching = [r for r in self._replies.values()
                    if (r.seqno, r.result_digest) == (payload.seqno,
                                                      payload.result_digest)]
        if len(matching) >= self.reply_quorum:
            full = next((r.result for r in matching
                         if r.result is not None), matching[0].result)
            self._complete(request, full)

    def _complete(self, request: Request, result: Any) -> None:
        """Commit the in-flight request and hand the result up."""
        self._request = None
        self._timer.stop()
        self.record_completion(request.rid, self._sent_at)
        if self.on_result is not None:
            self.on_result(result)

    def _on_timeout(self) -> None:
        request = self._request
        if request is None:
            return
        self.timeouts += 1
        # Re-send to every replica; the leader deduplicates.
        assert self.config.n is not None
        self.multicast_authenticated(
            [f"r{r}" for r in range(self.config.n)],
            ClientRequestMsg(request), size_bytes=request.size_bytes)
        self._timer.start(self.config.request_retransmit_ms)
