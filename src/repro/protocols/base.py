"""Shared scaffolding for the leader-based baseline protocols.

All four baselines (WAN-Paxos, speculative PBFT, Zyzzyva, Zab) share the
same skeleton: a leader batches client requests (B = 20, Section 5.1.2),
assigns sequence numbers, drives one protocol-specific ordering exchange,
and replicas execute committed batches in order and reply to clients.  This
module factors that skeleton so each baseline module only implements its
ordering exchange -- which is exactly what differentiates them in the
paper's Figure 6.

The baselines authenticate with MACs only (no digital signatures), which is
what makes their CPU profile differ from XPaxos in Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.config import ClusterConfig
from repro.crypto.costs import CostModel
from repro.crypto.primitives import Digest, KeyStore, digest_of
from repro.net.network import Network
from repro.sim.core import Simulator
from repro.sim.process import Timer
from repro.smr.app import StateMachine
from repro.smr.log import CommitEntry, CommitLog
from repro.smr.messages import Batch, Reply, Request
from repro.smr.runtime import ReplicaBase, SmrClientBase


@dataclass(frozen=True)
class ClientRequestMsg:
    """Client -> leader request envelope (MAC-authenticated channel)."""

    request: Request


@dataclass(frozen=True)
class GenericReply:
    """Replica -> client reply, protocol-agnostic."""

    replica: int
    view: int
    seqno: int
    timestamp: int
    client: int
    result: Any
    result_digest: Digest
    size_bytes: int = 0


class BaselineReplica(ReplicaBase):
    """Skeleton replica: batching at the leader + ordered execution.

    Subclasses implement :meth:`propose_batch` (leader side) and their own
    message handlers, calling :meth:`commit_batch` when a slot becomes
    stable and :meth:`execute_ready` afterwards.
    """

    def __init__(self, replica_id: int, config: ClusterConfig,
                 sim: Simulator, network: Network, keystore: KeyStore,
                 app_factory: Callable[[], StateMachine], site: str,
                 cost_model: Optional[CostModel] = None) -> None:
        super().__init__(replica_id, config, sim, network, keystore,
                         app_factory, site, cost_model)
        self.view = 0
        self.sn = 0
        self.ex = 0
        self.commit_log = CommitLog()
        self._pending_requests: List[Request] = []
        self._batch_timer = Timer(self, self.flush_batch, "batch")
        self._seen_requests: set = set()
        self._last_reply: Dict[int, GenericReply] = {}
        self.on_commit_batch: Optional[Callable[[int, Batch], None]] = None

    # -- role -----------------------------------------------------------
    @property
    def leader_id(self) -> int:
        """The current leader (static in the fault-free baselines)."""
        assert self.config.n is not None
        return self.view % self.config.n

    @property
    def is_leader(self) -> bool:
        """Is this replica the leader of the current view?"""
        return self.replica_id == self.leader_id

    # -- batching at the leader ------------------------------------------
    def receive_request(self, request: Request) -> None:
        """Enqueue a client request for batching (leader only)."""
        if not self.is_leader:
            return
        cached = self._last_reply.get(request.client)
        if cached is not None and cached.timestamp >= request.timestamp:
            if cached.timestamp == request.timestamp:
                self.send(f"c{request.client}", cached,
                          size_bytes=cached.size_bytes)
            return
        if request.rid in self._seen_requests:
            return
        self._seen_requests.add(request.rid)
        self._pending_requests.append(request)
        if len(self._pending_requests) >= self.config.batch_size:
            self.flush_batch()
        elif not self._batch_timer.armed:
            self._batch_timer.start(self.config.batch_timeout_ms)

    def flush_batch(self) -> None:
        """Assign the next sequence number to a batch and propose it."""
        self._batch_timer.stop()
        if not self._pending_requests or not self.is_leader:
            return
        requests = tuple(self._pending_requests[: self.config.batch_size])
        del self._pending_requests[: len(requests)]
        batch = Batch(requests)
        self.sn += 1
        self.propose_batch(self.sn, batch)
        if self._pending_requests:
            self.sim.call_soon(self.flush_batch)

    def propose_batch(self, seqno: int, batch: Batch) -> None:
        """Protocol-specific ordering exchange. Subclasses implement."""
        raise NotImplementedError

    # -- commit and execution ---------------------------------------------
    def commit_batch(self, seqno: int, batch: Batch) -> None:
        """Record a stable slot and execute anything now contiguous."""
        if seqno not in self.commit_log:
            self.commit_log.put(
                seqno, CommitEntry(seqno, self.view, batch, ()))
        self.execute_ready()

    def execute_ready(self) -> None:
        """Execute committed batches in order; subclass hook for replies."""
        while True:
            entry = self.commit_log.get(self.ex + 1)
            if entry is None:
                return
            seqno = self.ex + 1
            results = []
            for request in entry.batch:
                results.append(self.app.execute(request.op))
                self.execution_trace.append((seqno, request.rid))
                self.committed_requests += 1
            self.ex = seqno
            if self.on_commit_batch is not None:
                self.on_commit_batch(seqno, entry.batch)
            self.after_execute(seqno, entry.batch, results)
            if seqno % self.config.checkpoint_period == 0:
                self.commit_log.truncate_to(
                    seqno - self.config.checkpoint_period)

    def after_execute(self, seqno: int, batch: Batch,
                      results: List[Any]) -> None:
        """Called once per executed batch. Default: no-op."""

    def reply_to_clients(self, seqno: int, batch: Batch,
                         results: List[Any]) -> None:
        """Send one MAC-authenticated reply per request in the batch."""
        for request, result in zip(batch, results):
            self.cpu.charge_mac(64)
            reply = GenericReply(
                replica=self.replica_id, view=self.view, seqno=seqno,
                timestamp=request.timestamp, client=request.client,
                result=result, result_digest=digest_of(result),
                size_bytes=0)
            self._last_reply[request.client] = reply
            self.send(f"c{request.client}", reply,
                      size_bytes=reply.size_bytes)

    def batch_digest(self, batch: Batch) -> Digest:
        """Digest over the signed request bodies of a batch, charging CPU."""
        self.cpu.charge_digest(batch.size_bytes)
        return digest_of(tuple(r.body() for r in batch))


class QuorumClient(SmrClientBase):
    """Closed-loop client that commits on ``reply_quorum`` matching replies.

    ``reply_quorum = 1`` models CFT protocols where the leader's reply is
    authoritative (Paxos, Zab); BFT protocols need ``t + 1`` matching
    (PBFT) or all ``3t + 1`` speculative replies (Zyzzyva's fast path).
    """

    def __init__(self, client_id: int, config: ClusterConfig,
                 sim: Simulator, network: Network, keystore: KeyStore,
                 site: str, reply_quorum: int,
                 cost_model: Optional[CostModel] = None) -> None:
        super().__init__(client_id, config, sim, network, keystore, site,
                         cost_model)
        if reply_quorum < 1:
            raise ValueError("reply_quorum must be >= 1")
        self.reply_quorum = reply_quorum
        self.view = 0
        self._request: Optional[Request] = None
        self._sent_at = 0.0
        self._replies: Dict[int, GenericReply] = {}
        self._timer = Timer(self, self._on_timeout, "timer_c")
        self.on_result: Optional[Callable[[Any], None]] = None
        self.timeouts = 0

    @property
    def busy(self) -> bool:
        """True while a request is in flight."""
        return self._request is not None

    def leader_name(self) -> str:
        """Network name of the node the client sends to."""
        assert self.config.n is not None
        return f"r{self.view % self.config.n}"

    def propose(self, op: Any, size_bytes: int = 0) -> Request:
        """Invoke one operation (closed loop)."""
        if self._request is not None:
            raise RuntimeError(
                f"client {self.client_id} already has a request in flight")
        ts = self.next_timestamp()
        self.cpu.charge_mac(size_bytes)
        request = Request(op=op, timestamp=ts, client=self.client_id,
                          size_bytes=size_bytes, signature=None)
        self._request = request
        self._sent_at = self.sim.now
        self._replies.clear()
        self.send(self.leader_name(), ClientRequestMsg(request),
                  size_bytes=size_bytes)
        self._timer.start(self.config.request_retransmit_ms)
        return request

    def on_message(self, src: str, payload: Any) -> None:
        if not isinstance(payload, GenericReply):
            return
        request = self._request
        if request is None or payload.timestamp != request.timestamp:
            return
        self.cpu.charge_mac(64)
        self._replies[payload.replica] = payload
        matching = [r for r in self._replies.values()
                    if (r.seqno, r.result_digest) == (payload.seqno,
                                                      payload.result_digest)]
        if len(matching) >= self.reply_quorum:
            full = next((r.result for r in matching
                         if r.result is not None), matching[0].result)
            self._request = None
            self._timer.stop()
            self.record_completion(request.rid, self._sent_at)
            if self.on_result is not None:
                self.on_result(full)

    def _on_timeout(self) -> None:
        request = self._request
        if request is None:
            return
        self.timeouts += 1
        # Re-send to every replica; the leader deduplicates.
        assert self.config.n is not None
        self.multicast([f"r{r}" for r in range(self.config.n)],
                       ClientRequestMsg(request),
                       size_bytes=request.size_bytes)
        self._timer.start(self.config.request_retransmit_ms)
