"""Speculative PBFT replica (Figure 6a).

The paper uses "a speculative variant of [PBFT] that relies on a 2-phase
common-case commit protocol across only 2t + 1 replicas" out of the 3t + 1
total; "the remaining t replicas are not involved in the common case"
(Section 5.1.2).

Common case:

1. client -> primary: request;
2. primary -> the 2t other *active* replicas: ``PRE-PREPARE(sn, batch)``;
3. every active replica -> every active replica: ``COMMIT(sn, D(batch))``;
4. an active replica completes the slot on 2t + 1 matching commits
   (including its own) and replies to the client;
5. the client commits on t + 1 matching replies.

Authentication is MAC-based, as in PBFT.

View change: the active set of view ``v`` is the 2t + 1 replicas starting
at the primary ``v mod n``, so changing views rotates both the primary and
the common-case quorum.  A replica that suspects the primary broadcasts a
``VIEW-CHANGE`` carrying its committed entries and its *prepared
certificates* (slots with a PRE-PREPARE but not yet 2t + 1 commits); the
new primary installs the view on a 2t + 1 quorum of these, adopts the
merged committed prefix, re-proposes the prepared-but-uncommitted slots in
the new view, and announces it with ``NEW-VIEW`` (which doubles as a
catch-up vehicle for replicas entering the active set).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.crypto.primitives import Digest
from repro.protocols.base import BaselineReplica, register_modeled
from repro.smr.log import CommitEntry
from repro.smr.messages import Batch


@register_modeled
@dataclass(frozen=True)
class PrePrepare:
    """Primary -> active replicas: speculative ordering of a batch."""

    view: int
    seqno: int
    batch: Batch
    batch_digest: Digest


@register_modeled
@dataclass(frozen=True)
class CommitMsg:
    """Active replica -> active replicas: second-phase vote."""

    view: int
    seqno: int
    batch_digest: Digest
    sender: int


@register_modeled
@dataclass(frozen=True)
class ViewChange:
    """Suspecting replica -> all: recovery state for ``view``.

    ``committed`` is the replica's commit-log suffix; ``prepared`` carries
    its prepared certificates -- slots it holds a PRE-PREPARE for that have
    not yet gathered 2t + 1 commits.
    """

    view: int
    sender: int
    executed_upto: int
    committed: Tuple[Tuple[int, Batch], ...]
    prepared: Tuple[Tuple[int, Digest, Batch], ...]


@register_modeled
@dataclass(frozen=True)
class NewView:
    """New primary -> all: the view is installed; adopt the merged
    committed prefix."""

    view: int
    sender: int
    executed_upto: int
    committed: Tuple[Tuple[int, Batch], ...]


class PbftReplica(BaselineReplica):
    """One replica of the speculative PBFT deployment (n = 3t + 1)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._batches: Dict[int, Batch] = {}
        # Votes are keyed by (seqno, digest): commits that outrun their
        # PRE-PREPARE must not pool with votes for a different batch at
        # the same slot.
        self._votes: Dict[Tuple[int, Digest], Set[int]] = {}
        self._digests: Dict[int, Digest] = {}

    # -- roles ------------------------------------------------------------
    def active_ids(self, view: Optional[int] = None) -> List[int]:
        """The 2t + 1 replicas involved in the common case of ``view``
        (default: the current one): the primary and its 2t successors."""
        assert self.config.n is not None
        v = self.view if view is None else view
        leader = v % self.config.n
        return [(leader + i) % self.config.n
                for i in range(2 * self.config.t + 1)]

    @property
    def is_active(self) -> bool:
        """Is this replica in the common-case quorum?"""
        return self.replica_id in self.active_ids()

    def supports_view_change(self) -> bool:
        return True

    def view_change_quorum(self) -> int:
        return 2 * self.config.t + 1

    # -- message handling ---------------------------------------------------
    def on_protocol_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, PrePrepare):
            self._on_pre_prepare(src, payload)
        elif isinstance(payload, CommitMsg):
            self._on_commit(payload)
        elif isinstance(payload, ViewChange):
            self.on_view_change_msg(payload.sender, payload.view, payload)
        elif isinstance(payload, NewView):
            self._on_new_view(src, payload)

    def propose_batch(self, seqno: int, batch: Batch) -> None:
        digest = self.batch_digest(batch)
        self._batches[seqno] = batch
        self._digests[seqno] = digest
        pre_prepare = PrePrepare(self.view, seqno, batch, digest)
        peers = [f"r{a}" for a in self.active_ids()
                 if a != self.replica_id]
        self.multicast_authenticated(peers, pre_prepare,
                                     size_bytes=batch.size_bytes)
        self._vote(seqno, digest)

    def _on_pre_prepare(self, src: str, m: PrePrepare) -> None:
        if m.view > self.view and src == f"r{self.new_leader_of(m.view)}":
            # A fresher view's primary is proposing: its view change
            # completed (the NEW-VIEW may still be in flight).
            self.enter_view(m.view)
        if m.view != self.view or not self.is_active or self.is_leader \
                or self.campaigning:
            return
        self.cpu.charge_mac(m.batch.size_bytes)
        self._batches[m.seqno] = m.batch
        self._digests[m.seqno] = m.batch_digest
        self._vote(m.seqno, m.batch_digest)

    def _vote(self, seqno: int, digest: Digest) -> None:
        vote = CommitMsg(self.view, seqno, digest, self.replica_id)
        # Our own vote is recorded at this replica's position in the
        # active list (see ReplicaBase._fanout_with_self).
        self._fanout_with_self([f"r{a}" for a in self.active_ids()],
                               vote, 48,
                               lambda: self._record_vote(vote))

    def _on_commit(self, m: CommitMsg) -> None:
        # Votes from views ahead of ours are kept: they are keyed by
        # digest, so they can only ever complete the identical batch.
        if m.view < self.view or not self.is_active:
            return
        self.cpu.charge_mac(48)
        self._record_vote(m)

    def _record_vote(self, m: CommitMsg) -> None:
        votes = self._votes.setdefault((m.seqno, m.batch_digest), set())
        votes.add(m.sender)
        self._maybe_commit(m.seqno)

    def _maybe_commit(self, seqno: int) -> None:
        """Complete a slot once the PRE-PREPARE fixed its digest and that
        digest holds 2t + 1 votes."""
        digest = self._digests.get(seqno)
        if digest is None:
            return  # votes outran the pre-prepare; re-checked on arrival
        votes = self._votes.get((seqno, digest), ())
        if len(votes) < 2 * self.config.t + 1 \
                or seqno not in self._batches:
            return
        batch = self._batches.pop(seqno)
        self._digests.pop(seqno, None)
        for key in [k for k in self._votes if k[0] == seqno]:
            del self._votes[key]
        self.commit_batch(seqno, batch)

    def after_execute(self, seqno: int, batch: Batch,
                      results: List[Any]) -> None:
        # Every active replica replies; the client needs t + 1 matching.
        if self.is_active:
            self.reply_to_clients(seqno, batch, results)

    # -- view change ------------------------------------------------------
    def on_enter_view(self, view: int) -> None:
        # In-flight slots of the old view are either carried over by the
        # new primary's merge or (if uncommitted everywhere) re-driven by
        # client retransmission.  Votes are NOT dropped: they are keyed
        # by (seqno, digest), so retained ones can only ever complete the
        # identical batch -- and ahead-of-view COMMITs that overtook the
        # new primary's first PRE-PREPARE (kept by `_on_commit`) must
        # survive this transition or the slot could lose its quorum for
        # good.  Only vote sets for slots already executed are pruned.
        self._votes = {key: votes for key, votes in self._votes.items()
                       if key[0] > self.ex}
        self._batches.clear()
        self._digests.clear()

    def make_view_change(self, target: int) -> ViewChange:
        committed = tuple((sn, entry.batch)
                          for sn, entry in self.commit_log.items())
        prepared = tuple((sn, self._digests[sn], self._batches[sn])
                         for sn in sorted(self._batches)
                         if sn in self._digests
                         and sn not in self.commit_log)
        return ViewChange(target, self.replica_id, self.ex, committed,
                          prepared)

    def view_change_size(self, message: ViewChange) -> int:
        return (sum(b.size_bytes + 16 for _, b in message.committed)
                + sum(b.size_bytes + 48 for _, _, b in message.prepared)
                + 128)

    def install_view(self, target: int, msgs: Dict[int, Any]) -> None:
        committed: Dict[int, Batch] = {}
        prepared: Dict[int, Batch] = {}
        freshest = self.replica_id
        freshest_ex = self.ex
        for m in msgs.values():
            for sn, batch in m.committed:
                committed[sn] = batch
            if m.executed_upto > freshest_ex:
                freshest, freshest_ex = m.sender, m.executed_upto
        for m in msgs.values():
            for sn, _digest, batch in m.prepared:
                if sn not in committed:
                    prepared.setdefault(sn, batch)
        # Adopt the merged committed prefix ourselves.
        for sn in sorted(committed):
            if sn > self.ex and sn not in self.commit_log:
                self.commit_log.put(
                    sn, CommitEntry(sn, target, committed[sn], ()))
        self.execute_ready()
        announcement = NewView(target, self.replica_id, self.ex,
                               tuple(sorted(committed.items())))
        size = sum(b.size_bytes for b in committed.values()) + 128
        self.multicast_authenticated(self.other_replica_names(),
                                     announcement, size_bytes=size)
        # Continue numbering above everything the old views touched, and
        # re-propose the carried-over prepared certificates in this view.
        top = max(self.sn, self.ex,
                  max(committed, default=0), max(prepared, default=0))
        self.sn = top
        for sn in sorted(prepared):
            if sn <= self.ex or sn in self.commit_log:
                continue
            self.propose_batch(sn, prepared[sn])
        if freshest_ex > self.ex:
            self.request_sync(freshest)

    def _on_new_view(self, src: str, m: NewView) -> None:
        if m.view < self.view or src != f"r{self.new_leader_of(m.view)}":
            return
        self.cpu.charge_mac(128)
        for sn, batch in m.committed:
            if sn > self.ex and sn not in self.commit_log:
                self.commit_log.put(sn, CommitEntry(sn, m.view, batch, ()))
        self.enter_view(m.view)
        self.execute_ready()
        if m.executed_upto > self.ex:
            # The merge reaches past what we can replay: fetch the rest
            # (for an old passive joining the active set this is a state
            # transfer).
            self.request_sync(m.sender)
