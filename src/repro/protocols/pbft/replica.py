"""Speculative PBFT replica (Figure 6a).

The paper uses "a speculative variant of [PBFT] that relies on a 2-phase
common-case commit protocol across only 2t + 1 replicas" out of the 3t + 1
total; "the remaining t replicas are not involved in the common case"
(Section 5.1.2).

Common case:

1. client -> primary: request;
2. primary -> the 2t other *active* replicas: ``PRE-PREPARE(sn, batch)``;
3. every active replica -> every active replica: ``COMMIT(sn, D(batch))``;
4. an active replica completes the slot on 2t + 1 matching commits
   (including its own) and replies to the client;
5. the client commits on t + 1 matching replies.

Authentication is MAC-based, as in PBFT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Set

from repro.crypto.primitives import Digest
from repro.protocols.base import BaselineReplica, ClientRequestMsg
from repro.smr.messages import Batch


@dataclass(frozen=True)
class PrePrepare:
    """Primary -> active replicas: speculative ordering of a batch."""

    view: int
    seqno: int
    batch: Batch
    batch_digest: Digest


@dataclass(frozen=True)
class CommitMsg:
    """Active replica -> active replicas: second-phase vote."""

    view: int
    seqno: int
    batch_digest: Digest
    sender: int


class PbftReplica(BaselineReplica):
    """One replica of the speculative PBFT deployment (n = 3t + 1)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._batches: Dict[int, Batch] = {}
        self._votes: Dict[int, Set[int]] = {}
        self._digests: Dict[int, Digest] = {}

    # -- roles ------------------------------------------------------------
    def active_ids(self) -> List[int]:
        """The 2t + 1 replicas involved in the common case."""
        assert self.config.n is not None
        return list(range(2 * self.config.t + 1))

    @property
    def is_active(self) -> bool:
        """Is this replica in the common-case quorum?"""
        return self.replica_id in self.active_ids()

    # -- message handling ---------------------------------------------------
    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, ClientRequestMsg):
            self.receive_request(payload.request)
        elif isinstance(payload, PrePrepare):
            self._on_pre_prepare(src, payload)
        elif isinstance(payload, CommitMsg):
            self._on_commit(payload)

    def propose_batch(self, seqno: int, batch: Batch) -> None:
        digest = self.batch_digest(batch)
        self._batches[seqno] = batch
        self._digests[seqno] = digest
        pre_prepare = PrePrepare(self.view, seqno, batch, digest)
        peers = [f"r{a}" for a in self.active_ids()
                 if a != self.replica_id]
        self.cpu.charge_macs(len(peers), batch.size_bytes)
        self.multicast(peers, pre_prepare, size_bytes=batch.size_bytes)
        self._vote(seqno, digest)

    def _on_pre_prepare(self, src: str, m: PrePrepare) -> None:
        if m.view != self.view or not self.is_active or self.is_leader:
            return
        self.cpu.charge_mac(m.batch.size_bytes)
        self._batches[m.seqno] = m.batch
        self._digests[m.seqno] = m.batch_digest
        self._vote(m.seqno, m.batch_digest)

    def _vote(self, seqno: int, digest: Digest) -> None:
        vote = CommitMsg(self.view, seqno, digest, self.replica_id)
        # Our own vote is recorded at this replica's position in the active
        # list, so the send order (and latency draw order) matches a
        # sequential per-peer loop exactly.
        me = self.replica_id
        actives = self.active_ids()
        before = [f"r{a}" for a in actives if a < me]
        after = [f"r{a}" for a in actives if a > me]
        self.cpu.charge_macs(len(before), 48)
        self.multicast(before, vote, size_bytes=48)
        self._record_vote(vote)
        self.cpu.charge_macs(len(after), 48)
        self.multicast(after, vote, size_bytes=48)

    def _on_commit(self, m: CommitMsg) -> None:
        if m.view != self.view or not self.is_active:
            return
        self.cpu.charge_mac(48)
        self._record_vote(m)

    def _record_vote(self, m: CommitMsg) -> None:
        expected = self._digests.get(m.seqno)
        if expected is not None and m.batch_digest != expected:
            return  # equivocation; the full protocol would view-change
        votes = self._votes.setdefault(m.seqno, set())
        votes.add(m.sender)
        quorum = 2 * self.config.t + 1
        if len(votes) >= quorum and m.seqno in self._batches:
            batch = self._batches.pop(m.seqno)
            self._votes.pop(m.seqno, None)
            self._digests.pop(m.seqno, None)
            self.commit_batch(m.seqno, batch)

    def after_execute(self, seqno: int, batch: Batch,
                      results: List[Any]) -> None:
        # Every active replica replies; the client needs t + 1 matching.
        if self.is_active:
            self.reply_to_clients(seqno, batch, results)
