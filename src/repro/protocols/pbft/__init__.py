"""Speculative PBFT (the paper's first BFT baseline, Figure 6a)."""

from repro.protocols.pbft.replica import PbftReplica
from repro.protocols.pbft.client import PbftClient

__all__ = ["PbftReplica", "PbftClient"]
