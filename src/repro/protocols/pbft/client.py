"""PBFT client: commits on t + 1 matching replies."""

from __future__ import annotations

from repro.protocols.base import QuorumClient


class PbftClient(QuorumClient):
    """Closed-loop client committing on ``t + 1`` matching replies."""

    def __init__(self, client_id, config, sim, network, keystore, site,
                 cost_model=None) -> None:
        super().__init__(client_id, config, sim, network, keystore, site,
                         reply_quorum=config.t + 1, cost_model=cost_model)
