"""Factory wiring a full cluster (replicas + clients) for any protocol.

The harness and the examples never instantiate protocol classes directly;
they describe the deployment with :class:`ClusterConfig` and call
:func:`build_cluster`.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.common.config import ClusterConfig, ProtocolName, sites_for
from repro.common.errors import ConfigurationError
from repro.crypto.costs import CostModel
from repro.crypto.primitives import KeyStore
from repro.net.bandwidth import BandwidthModel
from repro.net.latency import LatencyModel
from repro.net.network import Network
from repro.protocols.paxos import PaxosClient, PaxosReplica
from repro.protocols.pbft import PbftClient, PbftReplica
from repro.protocols.xpaxos import XPaxosClient, XPaxosReplica
from repro.protocols.zab import ZabClient, ZabReplica
from repro.protocols.zyzzyva import ZyzzyvaClient, ZyzzyvaReplica
from repro.sim.core import Simulator
from repro.smr.app import NullService, StateMachine
from repro.smr.runtime import ClusterRuntime

#: ``protocol -> (replica class, client class)``.
PROTOCOL_BUILDERS = {
    ProtocolName.XPAXOS: (XPaxosReplica, XPaxosClient),
    ProtocolName.PAXOS: (PaxosReplica, PaxosClient),
    ProtocolName.PBFT: (PbftReplica, PbftClient),
    ProtocolName.ZYZZYVA: (ZyzzyvaReplica, ZyzzyvaClient),
    ProtocolName.ZAB: (ZabReplica, ZabClient),
}


def build_cluster(
    config: ClusterConfig,
    num_clients: int,
    app_factory: Optional[Callable[[], StateMachine]] = None,
    sim: Optional[Simulator] = None,
    latency: Optional[LatencyModel] = None,
    bandwidth: Optional[BandwidthModel] = None,
    cost_model: Optional[CostModel] = None,
    client_site: Optional[str] = None,
    seed: int = 0,
) -> ClusterRuntime:
    """Assemble a ready-to-run cluster.

    Args:
        config: the deployment description. When ``config.sites`` is None,
            the paper's Table 4 / Section 5.2 placement for this protocol
            and ``t`` is used.
        num_clients: how many closed-loop clients to attach.
        app_factory: replicated application (default: the null service).
        sim: optionally share a simulator (tests compose several clusters).
        latency: network latency model (default: uniform 1 ms LAN).
        bandwidth: optional uplink model.
        cost_model: CPU costs for crypto (default: free).
        client_site: datacenter of the clients (default: primary's site,
            as in the paper's evaluation).
        seed: experiment seed.

    Returns:
        A :class:`ClusterRuntime` with replicas and clients attached.
    """
    if config.n is None:
        raise ConfigurationError("config.n unresolved")
    sim = sim or Simulator()
    sites: Sequence[str]
    if config.sites is not None:
        sites = config.sites
    else:
        try:
            sites = sites_for(config.protocol, config.t)
        except ConfigurationError:
            sites = ["DC0"] * config.n
    if latency is None:
        latency = LatencyModel.uniform(set(sites) | {client_site or sites[0]},
                                       one_way_ms=1.0, seed=seed)
    network = Network(sim, latency, bandwidth=bandwidth)
    keystore = KeyStore()
    runtime = ClusterRuntime(config, sim, network, keystore)

    replica_cls, client_cls = PROTOCOL_BUILDERS[config.protocol]
    factory = app_factory or NullService
    for replica_id in range(config.n):
        replica = replica_cls(
            replica_id, config, sim, network, keystore, factory,
            site=sites[replica_id], cost_model=cost_model)
        runtime.add_replica(replica)

    # The paper places clients in the primary's datacenter (Section 5.1.3).
    at_site = client_site or sites[0]
    for client_id in range(num_clients):
        client = client_cls(client_id, config, sim, network, keystore,
                            site=at_site, cost_model=cost_model)
        runtime.add_client(client)
    return runtime
