"""Command-line interface: run the paper's experiments from a shell.

Examples::

    python -m repro sweep --protocol xpaxos --clients 8 32 96
    python -m repro compare --t 1
    python -m repro faults --duration 60
    python -m repro scenarios --protocol all
    python -m repro reliability --nines-benign 4 --nines-correct 3 \
        --nines-synchrony 3
    python -m repro tables --which 5
    python -m repro bench --output BENCH_perf.json
    python -m repro bench --only message_storm --profile
    python -m repro profile fault-free --protocol xpaxos
    python -m repro lint --json lint_report.json
    python -m repro lint --only B001

``bench`` runs the performance micro-benchmark suite (event churn, heap
churn at 10^6 pending, same-tick drain, point-to-point message storm,
n-way broadcast storm, closed-loop XPaxos; see :mod:`repro.harness.perf`)
against both the current hot paths and the preserved seed implementation,
and writes ``BENCH_perf.json`` so every PR records a perf trajectory
point.  ``--only``/``--profile`` narrow or instrument a run for triage
(such payloads are never recordable); ``profile`` runs one scenario cell
under cProfile and prints the simulator's and network's hot-loop
counters next to the wall-clock profile (see ``docs/profiling.md``).

``scenarios`` runs the conformance matrix: every scenario of the built-in
library (crash cadences, partitions, Byzantine adversaries, anarchy
boundary crossings; see :mod:`repro.scenarios.library`) against the
selected protocols, grading each cell's safety/liveness invariants.

``lint`` runs the AST determinism & safety linter
(:mod:`repro.analysis`): module-level RNG draws, wall-clock reads,
hash-ordered set iteration, unregistered wire messages, simulator
hygiene and unregistered benchmarks -- the same invariants the runtime
enforces late, caught before a matrix run starts (see
``docs/static-analysis.md``).

``scenarios`` and ``sweep`` accept ``--jobs N`` to farm their
deterministic, independent cells/points to worker processes; merged
output is byte-identical to a sequential run (``0`` = one worker per
core; see :mod:`repro.harness.parallel` and ``docs/parallelism.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.common.config import ClusterConfig, ProtocolName, WorkloadConfig
from repro.crypto.costs import CostModel
from repro.faults.injector import FaultSchedule
from repro.harness.configs import paper_config
from repro.harness.runner import ExperimentRunner
from repro.harness.timeline import run_fault_timeline
from repro.net.bandwidth import BandwidthModel
from repro.net.latency import LatencyModel


def _runner(seed: int, uplink: float) -> ExperimentRunner:
    return ExperimentRunner(
        latency_factory=lambda s: LatencyModel.ec2(seed=s),
        bandwidth_factory=lambda: BandwidthModel(default_rate=uplink),
        cost_model=CostModel(),
        seed=seed,
    )


def _bench_config(protocol: ProtocolName, t: int) -> ClusterConfig:
    return paper_config(protocol, t=t,
                        request_retransmit_ms=20_000.0,
                        view_change_timeout_ms=10_000.0)


def cmd_sweep(args: argparse.Namespace) -> int:
    """Latency-vs-throughput sweep for one protocol."""
    protocol = ProtocolName(args.protocol)
    runner = _runner(args.seed, args.uplink)
    config = _bench_config(protocol, args.t)
    print(f"{protocol.value} t={args.t} "
          f"{args.request_size}B requests, EC2 WAN")
    print(f"{'clients':>8} {'kops/s':>9} {'lat ms':>9} {'cpu %':>7}")
    # Points are independent deterministic runs, so --jobs N farms them
    # to worker processes; results come back in client-count order and
    # are identical to a sequential sweep.
    workloads = [
        WorkloadConfig(
            num_clients=clients, request_size=args.request_size,
            duration_ms=args.duration * 1_000.0,
            warmup_ms=min(500.0, args.duration * 100.0),
            client_site="CA")
        for clients in args.clients
    ]
    results = runner.run_points(config, workloads, jobs=args.jobs)
    for clients, result in zip(args.clients, results):
        lat = (f"{result.mean_latency_ms:9.1f}"
               if result.mean_latency_ms is not None else "      n/a")
        print(f"{clients:>8} {result.throughput_kops:9.3f} {lat} "
              f"{result.cpu_percent_most_loaded:7.1f}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Performance micro-benchmark suite; writes ``BENCH_perf.json``."""
    from repro.harness.perf import format_suite, run_suite, write_suite

    # Fail on an unwritable output path before spending benchmark time --
    # without leaving an empty file behind if the suite is interrupted.
    import os

    existed = os.path.exists(args.output)
    try:
        with open(args.output, "a"):
            pass
        if not existed:
            os.remove(args.output)
    except OSError as exc:
        print(f"cannot write {args.output}: {exc}", file=sys.stderr)
        return 2

    def _run():
        return run_suite(
            events=args.events, messages=args.messages,
            broadcast_rounds=args.broadcast_rounds, clients=args.clients,
            duration_ms=args.duration * 1_000.0, seed=args.seed,
            repeat=args.repeat, heap_backlog=args.heap_pending,
            heap_churn=args.heap_churn, same_tick_ticks=args.same_tick,
            only=args.only or None)

    try:
        if args.profile is not None:
            from repro.harness.profiling import (
                dump_stats,
                format_stats,
                profile_call,
            )

            payload, profiler = profile_call(_run)
            # Instrumented timings are not comparable to clean ones;
            # marking the payload makes `trajectory record` refuse it.
            payload["params"]["profiled"] = True
        else:
            payload = _run()
    except ValueError as exc:
        # e.g. --only with an unknown benchmark name.
        print(str(exc), file=sys.stderr)
        return 2
    print("perf suite: current hot paths vs preserved seed implementation")
    print(format_suite(payload))
    if args.profile is not None:
        dump_stats(profiler, args.profile)
        print()
        print(format_stats(profiler))
        print(f"wrote profile {args.profile} "
              f"(load with `python -m pstats {args.profile}`)")
        print("note: timings above ran under cProfile; the payload is "
              "marked profiled and cannot be recorded as a trajectory "
              "point")
    write_suite(payload, args.output)
    print(f"wrote {args.output}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile one scenario cell: cProfile plus subsystem counters."""
    from repro.harness.matrix import MatrixRunner
    from repro.harness.profiling import (
        dump_stats,
        profile_call,
        profile_report,
        subsystem_counters,
    )
    from repro.scenarios.library import get_scenario

    try:
        scenario = get_scenario(args.scenario)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    protocol = ProtocolName(args.protocol)
    if not scenario.applies_to(protocol):
        print(f"scenario {scenario.name} does not apply to "
              f"{protocol.value}", file=sys.stderr)
        return 2
    runner = MatrixRunner(seed=args.seed, t=args.t)
    counters = {}

    def collect(runtime):
        counters.update(subsystem_counters(sim=runtime.sim,
                                           network=runtime.network))

    cell, profiler = profile_call(
        lambda: runner.run_cell(protocol, scenario, probe=collect))
    print(f"{scenario.name} x {protocol.value}: {cell.status} "
          f"({cell.committed} committed)")
    print(profile_report(profiler, counters, sort=args.sort,
                         limit=args.limit))
    if args.pstats:
        dump_stats(profiler, args.pstats)
        print(f"wrote profile {args.pstats}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """AST determinism & safety linter (see ``docs/static-analysis.md``).

    Exit 0 when the tree is clean (modulo inline suppressions and the
    committed baseline); exit 1 on any new finding *or* stale baseline
    entry; exit 2 on usage errors (unknown rule id, missing path,
    malformed baseline).
    """
    from repro.analysis import (
        all_rule_classes,
        format_report,
        run_lint,
        write_baseline,
    )

    if args.list_rules:
        for rid, cls in sorted(all_rule_classes().items()):
            print(f"{rid}  [{cls.severity.value}] {cls.title}")
        return 0
    only = [rid.strip()
            for chunk in args.only for rid in chunk.split(",")
            if rid.strip()]
    paths = args.paths or ["src", "tests", "benchmarks"]
    baseline = None if args.no_baseline else args.baseline
    try:
        report = run_lint(paths, only=only or None, baseline_path=baseline)
    except (ValueError, FileNotFoundError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.write_baseline:
        # Grandfather the current findings: they (plus what the baseline
        # already absorbs) become the new committed debt.
        write_baseline(args.baseline, report.findings + report.baselined)
        print(f"wrote {len(report.findings) + len(report.baselined)} "
              f"entr(ies) to {args.baseline}")
        return 0
    print(format_report(report, verbose=args.verbose))
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json())
        print(f"wrote {args.json}")
    return 0 if report.ok else 1


def cmd_trajectory(args: argparse.Namespace) -> int:
    """Perf-trajectory gate over ``benchmarks/perf/history/``.

    ``check`` compares a ``BENCH_perf.json`` against the best recorded
    speedups and fails (exit 1) on a >tolerance drop; ``record`` archives
    the payload as a new trajectory point.
    """
    import json

    from repro.harness.trajectory import (
        best_point_for,
        check_point,
        describe_host,
        format_check,
        load_history,
        record_point,
    )

    try:
        with open(args.payload) as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as exc:
        # ValueError covers a truncated/corrupt JSON payload (e.g. a
        # bench run killed mid-write).
        print(f"cannot read {args.payload}: {exc}", file=sys.stderr)
        return 2
    if args.action == "record":
        try:
            path = record_point(payload, history_dir=args.history_dir,
                                label=args.label)
        except ValueError as exc:
            # Partial (--only) or profiled payload: never recordable.
            print(str(exc), file=sys.stderr)
            return 2
        print(f"recorded trajectory point {path}")
        return 0
    history = load_history(args.history_dir)
    print(format_check(payload, history, tolerance=args.tolerance))
    problems = check_point(payload, history, tolerance=args.tolerance)
    for problem in problems:
        print(f"PERF REGRESSION: {problem}", file=sys.stderr)
    if problems:
        # Host facts, current run vs the best point per tripped
        # benchmark: different machine / fewer cores / nonzero loadavg
        # is contention, not a regression.
        print(f"host (this run): {describe_host(payload.get('host', {}))}",
              file=sys.stderr)
        for name in sorted({p.split(":", 1)[0] for p in problems}):
            best = best_point_for(history, name)
            if best is not None:
                print(f"host (best {name}, {best.get('_file', '?')}): "
                      f"{describe_host(best.get('host', {}))}",
                      file=sys.stderr)
        print("note: the gate compares same-host speedup ratios -- if "
              "anything else was loading this host (e.g. a parallel "
              "`repro scenarios --jobs N` run), this can be a "
              "host-contention false trip rather than a regression. "
              "Re-run `scripts/ci.sh perf` alone on an idle host before "
              "treating it as real; see docs/parallelism.md.",
              file=sys.stderr)
    return 1 if problems else 0


def cmd_compare(args: argparse.Namespace) -> int:
    """One run per protocol at a fixed client count (mini Figure 7)."""
    runner = _runner(args.seed, args.uplink)
    print(f"all protocols, t={args.t}, {args.clients} clients, "
          f"{args.request_size}B requests")
    print(f"{'protocol':>9} {'kops/s':>9} {'lat ms':>9} {'cpu %':>7}")
    for protocol in ProtocolName:
        config = _bench_config(protocol, args.t)
        workload = WorkloadConfig(
            num_clients=args.clients, request_size=args.request_size,
            duration_ms=args.duration * 1_000.0, warmup_ms=500.0,
            client_site="CA")
        result = runner.run_point(config, workload)
        lat = (f"{result.mean_latency_ms:9.1f}"
               if result.mean_latency_ms is not None else "      n/a")
        print(f"{protocol.value:>9} {result.throughput_kops:9.3f} {lat} "
              f"{result.cpu_percent_most_loaded:7.1f}")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """A Figure 9-style crash timeline on XPaxos."""
    runner = _runner(args.seed, args.uplink)
    duration_ms = args.duration * 1_000.0
    config = _bench_config(ProtocolName.XPAXOS, 1)
    config = ClusterConfig(
        t=1, protocol=ProtocolName.XPAXOS, sites=config.sites,
        delta_ms=1_250.0, request_retransmit_ms=2_500.0,
        view_change_timeout_ms=10_000.0)
    workload = WorkloadConfig(num_clients=args.clients, request_size=1024,
                              duration_ms=duration_ms, warmup_ms=2_000.0,
                              client_site="CA")
    schedule = FaultSchedule()
    downtime = duration_ms * 0.04
    for fraction, victim in ((0.35, 1), (0.6, 0), (0.85, 2)):
        schedule.crash_for(duration_ms * fraction, victim, downtime)
    result = run_fault_timeline(runner, config, workload, schedule,
                                window_ms=1_000.0)
    print("XPaxos under rolling crashes (VA, CA, JP)")
    for start, kops in result.throughput_series[::max(1,
            int(duration_ms / 25_000))]:
        print(f"{start / 1000.0:7.0f}s {kops:7.3f} "
              + "#" * int(kops * 150))
    print(f"view changes: {result.view_changes}; "
          f"longest outage {result.longest_gap_ms() / 1000.0:.1f}s")
    return 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    """Run the scenario conformance matrix and print the grid."""
    from repro.harness.matrix import MatrixRunner
    from repro.scenarios.library import builtin_scenarios, get_scenario

    if args.list:
        for scenario in builtin_scenarios():
            scope = "all" if scenario.protocols is None else ",".join(
                sorted(p.value for p in scenario.protocols))
            print(f"{scenario.name:<32} [{scope}] {scenario.description}")
        return 0
    if args.scenario:
        try:
            scenarios = [get_scenario(name) for name in args.scenario]
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
    else:
        scenarios = builtin_scenarios()
    if args.protocol == "all":
        protocols = list(ProtocolName)
    else:
        protocols = [ProtocolName(args.protocol)]
    runner = MatrixRunner(seed=args.seed, t=args.t)
    result = runner.run_matrix(scenarios=scenarios, protocols=protocols,
                               jobs=args.jobs)
    print(result.format_grid())
    for cell in result.failures:
        print(f"FAIL {cell.scenario} x {cell.protocol}: {cell.detail}",
              file=sys.stderr)
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(result.to_json())
        print(f"wrote {args.json}")
    return 1 if result.failures else 0


def cmd_reliability(args: argparse.Namespace) -> int:
    """Nines of consistency/availability at one grid point."""
    from repro.reliability.tables import availability_cell, consistency_cell

    row = consistency_cell(args.t, args.nines_benign, args.nines_correct,
                           args.nines_synchrony)
    print(f"consistency nines (t={args.t}, 9benign={args.nines_benign}, "
          f"9correct={args.nines_correct}, "
          f"9synchrony={args.nines_synchrony}):")
    print(f"  CFT={row.cft}  XPaxos={row.xpaxos}  BFT={row.bft}")
    nines_available = min(args.nines_correct, args.nines_synchrony)
    arow = availability_cell(args.t, nines_available, args.nines_benign)
    print(f"availability nines (9available~{nines_available}):")
    print(f"  CFT={arow.cft}  XPaxos={arow.xpaxos}  BFT={arow.bft}")
    return 0


def cmd_tables(args: argparse.Namespace) -> int:
    """Print one of the paper's reliability tables."""
    from repro.reliability.tables import (
        availability_table,
        consistency_table,
        format_availability_table,
        format_consistency_table,
    )

    which = args.which
    if which in (5, 6):
        t = 1 if which == 5 else 2
        print(format_consistency_table(consistency_table(t)))
    elif which in (7, 8):
        t = 1 if which == 7 else 2
        print(format_availability_table(availability_table(t)))
    else:
        print(f"unknown table {which}; choose 5, 6, 7 or 8",
              file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Assemble the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XFT/XPaxos reproduction experiments")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--uplink", type=float, default=4_000.0,
                        help="uplink bytes per virtual ms")
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser("sweep", help="latency-vs-throughput sweep")
    sweep.add_argument("--protocol", default="xpaxos",
                       choices=[p.value for p in ProtocolName])
    sweep.add_argument("--t", type=int, default=1)
    sweep.add_argument("--clients", type=int, nargs="+",
                       default=[8, 32, 96])
    sweep.add_argument("--request-size", type=int, default=1024)
    sweep.add_argument("--duration", type=float, default=4.0,
                       help="virtual seconds per point")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the sweep points "
                            "(0 = one per core); results are identical "
                            "to a sequential sweep")
    sweep.set_defaults(func=cmd_sweep)

    bench = sub.add_parser(
        "bench", help="perf micro-benchmarks; writes BENCH_perf.json")
    bench.add_argument("--events", type=int, default=200_000,
                       help="event-churn iterations")
    bench.add_argument("--messages", type=int, default=100_000,
                       help="point-to-point storm size")
    bench.add_argument("--broadcast-rounds", type=int, default=12_500,
                       help="8-way broadcast rounds")
    bench.add_argument("--clients", type=int, default=16,
                       help="closed-loop XPaxos clients")
    bench.add_argument("--duration", type=float, default=2.0,
                       help="closed-loop virtual seconds")
    bench.add_argument("--repeat", type=int, default=3,
                       help="timing repetitions (best-of)")
    bench.add_argument("--heap-pending", type=int, default=1_000_000,
                       help="heap_churn_1m standing backlog size")
    bench.add_argument("--heap-churn", type=int, default=100_000,
                       help="heap_churn_1m cancel/re-arm operations")
    bench.add_argument("--same-tick", type=int, default=2_000,
                       help="same_tick_drain tick count")
    bench.add_argument("--only", action="append", default=[],
                       metavar="NAME",
                       help="run only these benchmarks (repeatable); the "
                            "payload is marked partial and `trajectory "
                            "record` will refuse it")
    bench.add_argument("--profile", nargs="?", const="BENCH_perf.pstats",
                       default=None, metavar="PSTATS",
                       help="run the suite under cProfile, dump raw "
                            "pstats (default %(const)s) and print the "
                            "top functions; the payload is marked "
                            "profiled and not recordable")
    bench.add_argument("--output", default="BENCH_perf.json")
    bench.set_defaults(func=cmd_bench)

    profile = sub.add_parser(
        "profile",
        help="profile one scenario cell (cProfile + subsystem counters)")
    profile.add_argument("scenario",
                         help="scenario name "
                              "(see `repro scenarios --list`)")
    profile.add_argument("--protocol", default="xpaxos",
                         choices=[p.value for p in ProtocolName])
    profile.add_argument("--t", type=int, default=1)
    profile.add_argument("--sort", default="cumulative",
                         help="pstats sort key (cumulative, tottime, ...)")
    profile.add_argument("--limit", type=int, default=25,
                         help="profile rows to print")
    profile.add_argument("--pstats", default=None, metavar="PATH",
                         help="also dump the raw pstats file")
    profile.set_defaults(func=cmd_profile)

    lint = sub.add_parser(
        "lint",
        help="AST determinism & safety linter (docs/static-analysis.md)")
    lint.add_argument("paths", nargs="*",
                      help="files/directories to lint "
                           "(default: src tests benchmarks)")
    lint.add_argument("--only", action="append", default=[],
                      metavar="RULE",
                      help="run only these rule ids (repeatable or "
                           "comma-separated, e.g. --only B001)")
    lint.add_argument("--json", default=None, metavar="PATH",
                      help="also write the full report as JSON")
    lint.add_argument("--baseline",
                      default="benchmarks/lint_baseline.json",
                      help="committed baseline of grandfathered findings "
                           "(default %(default)s)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore the baseline: report every finding")
    lint.add_argument("--write-baseline", action="store_true",
                      help="regenerate the baseline from the current "
                           "findings instead of failing on them")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")
    lint.add_argument("--verbose", action="store_true",
                      help="also print suppressed and baselined findings")
    lint.set_defaults(func=cmd_lint)

    trajectory = sub.add_parser(
        "trajectory",
        help="perf-trajectory gate over benchmarks/perf/history/")
    trajectory.add_argument("action", choices=["check", "record"])
    trajectory.add_argument("payload", nargs="?", default="BENCH_perf.json",
                            help="benchmark payload to gate/archive")
    trajectory.add_argument("--history-dir",
                            default="benchmarks/perf/history")
    trajectory.add_argument("--tolerance", type=float, default=0.2,
                            help="allowed drop below the best recorded "
                                 "speedup (0.2 = 20%%)")
    trajectory.add_argument("--label", default=None,
                            help="suffix for the recorded point's filename")
    trajectory.set_defaults(func=cmd_trajectory)

    compare = sub.add_parser("compare", help="all protocols, one load")
    compare.add_argument("--t", type=int, default=1)
    compare.add_argument("--clients", type=int, default=64)
    compare.add_argument("--request-size", type=int, default=1024)
    compare.add_argument("--duration", type=float, default=4.0)
    compare.set_defaults(func=cmd_compare)

    faults = sub.add_parser("faults", help="Figure 9-style crash timeline")
    faults.add_argument("--clients", type=int, default=32)
    faults.add_argument("--duration", type=float, default=125.0,
                        help="virtual seconds")
    faults.set_defaults(func=cmd_faults)

    scenarios = sub.add_parser(
        "scenarios", help="scenario conformance matrix")
    scenarios.add_argument("--protocol", default="all",
                           choices=["all"] + [p.value for p in ProtocolName])
    scenarios.add_argument("--t", type=int, default=1)
    scenarios.add_argument("--scenario", action="append", default=[],
                           metavar="NAME",
                           help="run only these scenarios (repeatable)")
    scenarios.add_argument("--list", action="store_true",
                           help="list known scenarios and exit")
    scenarios.add_argument("--json", default=None, metavar="PATH",
                           help="also write the cell records as JSON")
    scenarios.add_argument("--jobs", type=int, default=1,
                           help="worker processes for matrix cells "
                                "(0 = one per core); the merged matrix "
                                "is byte-identical to --jobs 1")
    scenarios.set_defaults(func=cmd_scenarios)

    reliability = sub.add_parser("reliability",
                                 help="nines at one grid point")
    reliability.add_argument("--t", type=int, default=1)
    reliability.add_argument("--nines-benign", type=int, default=4)
    reliability.add_argument("--nines-correct", type=int, default=3)
    reliability.add_argument("--nines-synchrony", type=int, default=3)
    reliability.set_defaults(func=cmd_reliability)

    tables = sub.add_parser("tables", help="print Tables 5-8")
    tables.add_argument("--which", type=int, required=True,
                        choices=[5, 6, 7, 8])
    tables.set_defaults(func=cmd_tables)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
