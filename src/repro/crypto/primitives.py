"""Digests, digital signatures and MACs for the simulated system.

Implementation notes
--------------------

* A :class:`Digest` is a real SHA-256 over a canonical encoding of the
  message payload, so content tampering is always detectable.
* A :class:`Signature` is *unforgeable by construction*: it can only be
  created through :meth:`KeyStore.sign`, which requires the signer's private
  capability.  Byzantine behaviour in the tests therefore has exactly the
  power the paper grants it -- replaying, withholding, equivocating with
  fresh signatures of its own, but never forging another machine's.
* Equality of signatures is value-based so they can sit inside frozen
  message dataclasses and travel through the network layer.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Dict, Tuple

from repro.common.errors import SignatureError

#: Canonical principal name of machine ``p``: replicas are ``"r<i>"``,
#: clients ``"c<i>"``.
Principal = str


def replica_principal(replica_id: int) -> Principal:
    """Principal name of a replica."""
    return f"r{replica_id}"


def client_principal(client_id: int) -> Principal:
    """Principal name of a client."""
    return f"c{client_id}"


def _canonical(obj: Any) -> bytes:
    """Encode ``obj`` deterministically for hashing.

    Handles the payload types that appear inside protocol messages: scalars,
    bytes, tuples/lists, dicts, dataclasses, signatures and digests.
    """
    if obj is None:
        return b"N"
    if isinstance(obj, bool):
        return b"T" if obj else b"F"
    if isinstance(obj, int):
        return b"i" + str(obj).encode()
    if isinstance(obj, float):
        return b"f" + repr(obj).encode()
    if isinstance(obj, str):
        data = obj.encode()
        return b"s" + str(len(data)).encode() + b":" + data
    if isinstance(obj, bytes):
        return b"b" + str(len(obj)).encode() + b":" + obj
    if isinstance(obj, Digest):
        return b"D" + obj.value
    if isinstance(obj, Signature):
        return b"S" + _canonical((obj.signer, obj.digest.value))
    if isinstance(obj, Mac):
        return b"M" + _canonical((obj.sender, obj.receiver, obj.digest.value))
    if isinstance(obj, (tuple, list)):
        parts = b"".join(_canonical(x) for x in obj)
        return b"l" + str(len(obj)).encode() + b":" + parts
    if isinstance(obj, dict):
        items = sorted(obj.items(), key=lambda kv: _canonical(kv[0]))
        parts = b"".join(_canonical(k) + _canonical(v) for k, v in items)
        return b"d" + str(len(obj)).encode() + b":" + parts
    if is_dataclass(obj) and not isinstance(obj, type):
        parts = [type(obj).__name__.encode()]
        for f in fields(obj):
            parts.append(_canonical(f.name))
            parts.append(_canonical(getattr(obj, f.name)))
        return b"c" + b"".join(parts)
    raise TypeError(f"cannot canonically encode {type(obj).__name__}")


@dataclass(frozen=True)
class Digest:
    """SHA-256 digest of a canonically encoded payload (the paper's D(m))."""

    value: bytes

    def hex(self) -> str:
        """Hex form for logs and debugging."""
        return self.value.hex()

    def __repr__(self) -> str:
        return f"Digest({self.value.hex()[:12]})"


def digest_of(obj: Any) -> Digest:
    """Compute ``D(obj)`` over the canonical encoding."""
    return Digest(hashlib.sha256(_canonical(obj)).digest())


@dataclass(frozen=True)
class Signature:
    """A digital signature ``<D(m)>_{sigma_p}`` by principal ``signer``.

    The private field ``_token`` is derived inside :class:`KeyStore` from the
    signer's secret; holding a Signature object with a valid token is proof
    the signer produced it.
    """

    signer: Principal
    digest: Digest
    _token: bytes

    def __repr__(self) -> str:
        return f"Sig({self.signer},{self.digest.hex()[:8]})"


@dataclass(frozen=True)
class Mac:
    """A message authentication code on the channel ``sender -> receiver``."""

    sender: Principal
    receiver: Principal
    digest: Digest
    _token: bytes

    def __repr__(self) -> str:
        return f"Mac({self.sender}->{self.receiver},{self.digest.hex()[:8]})"


class KeyStore:
    """The system-wide key infrastructure.

    The paper assumes every machine knows every other machine's public key
    (Section 4.2).  A single KeyStore per experiment plays the role of that
    PKI: ``sign``/``mac`` require the caller to *be* the principal (enforced
    by the protocol runtime, which only hands each node its own signing
    facade), and ``verify`` is available to everyone.
    """

    def __init__(self, secret: bytes = b"xft-repro") -> None:
        self._secret = secret

    # -- internal token derivations ------------------------------------
    def _sig_token(self, signer: Principal, digest: Digest) -> bytes:
        h = hashlib.sha256()
        h.update(b"sig")
        h.update(self._secret)
        h.update(signer.encode())
        h.update(digest.value)
        return h.digest()

    def _mac_token(self, sender: Principal, receiver: Principal,
                   digest: Digest) -> bytes:
        h = hashlib.sha256()
        h.update(b"mac")
        h.update(self._secret)
        h.update(sender.encode())
        h.update(receiver.encode())
        h.update(digest.value)
        return h.digest()

    # -- public API -----------------------------------------------------
    def sign(self, signer: Principal, payload: Any) -> Signature:
        """Sign ``payload`` as ``signer`` (requires the signer's identity)."""
        digest = digest_of(payload)
        return Signature(signer, digest, self._sig_token(signer, digest))

    def sign_digest(self, signer: Principal, digest: Digest) -> Signature:
        """Sign an already computed digest."""
        return Signature(signer, digest, self._sig_token(signer, digest))

    def verify(self, signature: Signature, payload: Any) -> bool:
        """Check that ``signature`` is a valid signature of ``payload``."""
        digest = digest_of(payload)
        return self.verify_digest(signature, digest)

    def verify_digest(self, signature: Signature, digest: Digest) -> bool:
        """Check ``signature`` against a digest."""
        return (
            signature.digest == digest
            and signature._token == self._sig_token(signature.signer, digest)
        )

    def check(self, signature: Signature, payload: Any,
              expected_signer: Principal) -> None:
        """Verify and raise :class:`SignatureError` on failure."""
        if signature.signer != expected_signer:
            raise SignatureError(
                f"signature by {signature.signer}, expected {expected_signer}"
            )
        if not self.verify(signature, payload):
            raise SignatureError(
                f"invalid signature by {signature.signer}"
            )

    def mac(self, sender: Principal, receiver: Principal,
            payload: Any) -> Mac:
        """Authenticate ``payload`` on the pairwise channel."""
        return self.mac_digest(sender, receiver, digest_of(payload))

    def mac_digest(self, sender: Principal, receiver: Principal,
                   digest: Digest) -> Mac:
        """MAC an already computed digest.

        The fan-out fast path: an n-way authenticated broadcast hashes the
        payload once and derives n channel tokens from the digest, instead
        of hashing the payload n times.
        """
        return Mac(sender, receiver, digest,
                   self._mac_token(sender, receiver, digest))

    def verify_mac(self, mac: Mac, payload: Any) -> bool:
        """Check a MAC against a payload."""
        digest = digest_of(payload)
        return (
            mac.digest == digest
            and mac._token == self._mac_token(mac.sender, mac.receiver,
                                              digest)
        )

    def verify_mac_digest(self, mac: Mac, digest: Digest) -> bool:
        """Check a MAC against an already computed payload digest.

        The delivery-time fast path: the transport hashes a fan-out's
        body once and hands the digest to each receiver, which then only
        derives the channel token instead of re-hashing the payload.
        """
        return (
            mac.digest == digest
            and mac._token == self._mac_token(mac.sender, mac.receiver,
                                              digest)
        )

    def forge_attempt(self, forger: Principal, victim: Principal,
                      payload: Any) -> Signature:
        """Produce the *invalid* signature a Byzantine ``forger`` would get
        when trying to sign as ``victim``.

        The token is derived from the forger's own key, so verification
        against ``victim`` always fails.  Used by the adversary models in the
        test suite to demonstrate unforgeability.
        """
        digest = digest_of(payload)
        return Signature(victim, digest, self._sig_token(forger, digest))
