"""Digests, digital signatures and MACs for the simulated system.

Implementation notes
--------------------

* A :class:`Digest` is a real SHA-256 over a canonical encoding of the
  message payload, so content tampering is always detectable.
* A :class:`Signature` is *unforgeable by construction*: it can only be
  created through :meth:`KeyStore.sign`, which requires the signer's private
  capability.  Byzantine behaviour in the tests therefore has exactly the
  power the paper grants it -- replaying, withholding, equivocating with
  fresh signatures of its own, but never forging another machine's.
* Equality of signatures is value-based so they can sit inside frozen
  message dataclasses and travel through the network layer.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields, is_dataclass
from operator import itemgetter
from typing import Any, Dict, Tuple

from repro.common.errors import SignatureError

#: Canonical principal name of machine ``p``: replicas are ``"r<i>"``,
#: clients ``"c<i>"``.
Principal = str


def replica_principal(replica_id: int) -> Principal:
    """Principal name of a replica."""
    return f"r{replica_id}"


def client_principal(client_id: int) -> Principal:
    """Principal name of a client."""
    return f"c{client_id}"


def _canonical(obj: Any) -> bytes:
    """Encode ``obj`` deterministically for hashing.

    Handles the payload types that appear inside protocol messages: scalars,
    bytes, tuples/lists, dicts, dataclasses, signatures and digests.

    The exact-type tests up front are the hot path: wire payloads are
    overwhelmingly tuples of ints/strs/bytes, and dispatching on
    ``obj.__class__`` skips the generic isinstance chain.  Subclasses
    (enums, user types) still route through :func:`_canonical_general`
    and encode byte-identically to the pre-fast-path encoder.
    """
    cls = obj.__class__
    if cls is tuple or cls is list:
        parts = b"".join(map(_canonical, obj))
        return b"l%d:%b" % (len(obj), parts)
    if cls is int:
        return b"i%d" % obj
    if cls is str:
        data = obj.encode()
        return b"s%d:%b" % (len(data), data)
    if cls is bytes:
        return b"b%d:%b" % (len(obj), obj)
    if cls is float:
        return b"f" + repr(obj).encode()
    return _canonical_general(obj)


def _canonical_general(obj: Any) -> bytes:
    """Structural encoding for everything off the exact-type fast path."""
    if obj is None:
        return b"N"
    if isinstance(obj, bool):
        return b"T" if obj else b"F"
    if isinstance(obj, int):
        return b"i" + str(obj).encode()
    if isinstance(obj, float):
        return b"f" + repr(obj).encode()
    if isinstance(obj, str):
        data = obj.encode()
        return b"s" + str(len(data)).encode() + b":" + data
    if isinstance(obj, bytes):
        return b"b" + str(len(obj)).encode() + b":" + obj
    if isinstance(obj, Digest):
        return b"D" + obj.value
    if isinstance(obj, Signature):
        return b"S" + _canonical((obj.signer, obj.digest.value))
    if isinstance(obj, Mac):
        return b"M" + _canonical((obj.sender, obj.receiver, obj.digest.value))
    if isinstance(obj, (tuple, list)):
        parts = b"".join(_canonical(x) for x in obj)
        return b"l" + str(len(obj)).encode() + b":" + parts
    if isinstance(obj, dict):
        items = sorted(obj.items(), key=lambda kv: _canonical(kv[0]))
        parts = b"".join(_canonical(k) + _canonical(v) for k, v in items)
        return b"d" + str(len(obj)).encode() + b":" + parts
    if is_dataclass(obj) and not isinstance(obj, type):
        parts = [type(obj).__name__.encode()]
        for f in fields(obj):
            parts.append(_canonical(f.name))
            parts.append(_canonical(getattr(obj, f.name)))
        return b"c" + b"".join(parts)
    raise TypeError(f"cannot canonically encode {type(obj).__name__}")


@dataclass(frozen=True)
class Digest:
    """SHA-256 digest of a canonically encoded payload (the paper's D(m))."""

    value: bytes

    def hex(self) -> str:
        """Hex form for logs and debugging."""
        return self.value.hex()

    def __repr__(self) -> str:
        return f"Digest({self.value.hex()[:12]})"

    # Hand-written equality/hash: digests are compared on every MAC and
    # signature verification, and the generated dataclass __eq__ builds a
    # field tuple per side per compare.  Value semantics are unchanged.
    def __eq__(self, other: Any) -> bool:
        if other.__class__ is Digest:
            return self.value == other.value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.value)


_sha256 = hashlib.sha256

#: Attribute used to memoize ``digest_of`` on frozen message instances.
_DIGEST_CACHE_ATTR = "_cached_digest"

#: Per-class cacheability memo: a class maps to True when its instances
#: are frozen dataclasses (immutable by contract, enforced by lint rule
#: A002) that accept the cache attribute.
_CACHEABLE: Dict[type, bool] = {}

_cache_hits = 0
_cache_stores = 0
_cache_uncached = 0


def digest_of(obj: Any) -> Digest:
    """Compute ``D(obj)`` over the canonical encoding.

    Memoized per message: frozen wire-message dataclasses carry their
    digest in a ``_cached_digest`` instance attribute after the first
    call, so re-digesting a message (leader stamps it per receiver, every
    receiver verifies it, quorum certificates re-reference it) costs one
    attribute probe instead of a canonical encode + SHA-256.  The cache
    is never invalidated -- messages are immutable by contract (enforced
    by lint rule A002 and the mutation-after-digest guard test).  Plain
    tuples/lists/dicts are never cached.
    """
    global _cache_hits, _cache_stores, _cache_uncached
    cached = getattr(obj, _DIGEST_CACHE_ATTR, None)
    if cached is not None:
        _cache_hits += 1
        return cached
    digest = Digest(_sha256(_canonical(obj)).digest())
    cls = obj.__class__
    cacheable = _CACHEABLE.get(cls)
    if cacheable is None:
        params = getattr(cls, "__dataclass_params__", None)
        cacheable = _CACHEABLE[cls] = bool(params is not None
                                           and params.frozen)
    if cacheable:
        try:
            object.__setattr__(obj, _DIGEST_CACHE_ATTR, digest)
            _cache_stores += 1
        except (AttributeError, TypeError):
            # Slotted or otherwise closed class: remember and stop trying.
            _CACHEABLE[cls] = False
            _cache_uncached += 1
    else:
        _cache_uncached += 1
    return digest


def cache_on_instance(obj: Any, attr: str, value: Any) -> None:
    """Memoize a derived value on a frozen instance.

    The sanctioned mutation point for frozen dataclasses: lint rule A002
    flags any other ``object.__setattr__`` on message instances.  Only
    derived values (digests of immutable fields) may be cached -- the
    attribute must never feed back into equality, hashing, or the wire
    encoding.
    """
    object.__setattr__(obj, attr, value)


def digest_cache_stats() -> Dict[str, int]:
    """Digest-cache counters for ``repro profile`` (docs/profiling.md)."""
    return {
        "hits": _cache_hits,
        "stores": _cache_stores,
        "uncached": _cache_uncached,
    }


def reset_digest_cache_stats() -> None:
    """Zero the digest-cache counters (profiling harness hook)."""
    global _cache_hits, _cache_stores, _cache_uncached
    _cache_hits = 0
    _cache_stores = 0
    _cache_uncached = 0


class Signature(tuple):
    """A digital signature ``<D(m)>_{sigma_p}`` by principal ``signer``.

    The private field ``_token`` is derived inside :class:`KeyStore` from the
    signer's secret; holding a Signature object with a valid token is proof
    the signer produced it.

    Implemented as a lean ``tuple`` subclass rather than a frozen
    dataclass: one is minted per sign/stamp on the fan-out hot path, and
    tuple construction and comparison run at C speed while keeping the
    same value semantics and immutability (``__slots__ = ()``).
    """

    __slots__ = ()

    def __new__(cls, signer: Principal, digest: Digest,
                _token: bytes) -> "Signature":
        return tuple.__new__(cls, (signer, digest, _token))

    signer = property(itemgetter(0))
    digest = property(itemgetter(1))
    _token = property(itemgetter(2))

    def __getnewargs__(self) -> Tuple[Any, ...]:
        return tuple(self)

    def __repr__(self) -> str:
        return f"Sig({self.signer},{self.digest.hex()[:8]})"


class Mac(tuple):
    """A message authentication code on the channel ``sender -> receiver``.

    Same lean tuple-subclass layout as :class:`Signature`: the transport
    mints one Mac per receiver per fan-out, so constructor cost is paid
    n times per multicast.
    """

    __slots__ = ()

    def __new__(cls, sender: Principal, receiver: Principal,
                digest: Digest, _token: bytes) -> "Mac":
        return tuple.__new__(cls, (sender, receiver, digest, _token))

    sender = property(itemgetter(0))
    receiver = property(itemgetter(1))
    digest = property(itemgetter(2))
    _token = property(itemgetter(3))

    def __getnewargs__(self) -> Tuple[Any, ...]:
        return tuple(self)

    def __repr__(self) -> str:
        return f"Mac({self.sender}->{self.receiver},{self.digest.hex()[:8]})"


class KeyStore:
    """The system-wide key infrastructure.

    The paper assumes every machine knows every other machine's public key
    (Section 4.2).  A single KeyStore per experiment plays the role of that
    PKI: ``sign``/``mac`` require the caller to *be* the principal (enforced
    by the protocol runtime, which only hands each node its own signing
    facade), and ``verify`` is available to everyone.
    """

    def __init__(self, secret: bytes = b"xft-repro") -> None:
        self._secret = secret
        # Domain-separated token prefixes, concatenated once per keystore
        # instead of once per token derivation.
        self._sig_prefix = b"sig" + secret
        self._mac_prefix = b"mac" + secret

    # -- internal token derivations ------------------------------------
    # Single-shot hashing: SHA-256 over one concatenated buffer is
    # byte-identical to the equivalent sequence of h.update() calls, and
    # skips four C-call round trips per token on the fan-out hot path.
    # The mac/verify fast paths below inline these derivations to skip
    # the extra frame per stamp/check; keep both in sync.
    def _sig_token(self, signer: Principal, digest: Digest) -> bytes:
        return _sha256(
            self._sig_prefix + signer.encode() + digest.value
        ).digest()

    def _mac_token(self, sender: Principal, receiver: Principal,
                   digest: Digest) -> bytes:
        return _sha256(
            self._mac_prefix + sender.encode() + receiver.encode()
            + digest.value
        ).digest()

    # -- public API -----------------------------------------------------
    def sign(self, signer: Principal, payload: Any) -> Signature:
        """Sign ``payload`` as ``signer`` (requires the signer's identity)."""
        digest = digest_of(payload)
        return Signature(signer, digest, self._sig_token(signer, digest))

    def sign_digest(self, signer: Principal, digest: Digest) -> Signature:
        """Sign an already computed digest."""
        return Signature(signer, digest, self._sig_token(signer, digest))

    def verify(self, signature: Signature, payload: Any) -> bool:
        """Check that ``signature`` is a valid signature of ``payload``."""
        digest = digest_of(payload)
        return self.verify_digest(signature, digest)

    def verify_digest(self, signature: Signature, digest: Digest) -> bool:
        """Check ``signature`` against a digest."""
        signer, sig_digest, token = signature
        return (
            sig_digest.value == digest.value
            and token == _sha256(
                self._sig_prefix + signer.encode() + digest.value
            ).digest()
        )

    def check(self, signature: Signature, payload: Any,
              expected_signer: Principal) -> None:
        """Verify and raise :class:`SignatureError` on failure."""
        if signature.signer != expected_signer:
            raise SignatureError(
                f"signature by {signature.signer}, expected {expected_signer}"
            )
        if not self.verify(signature, payload):
            raise SignatureError(
                f"invalid signature by {signature.signer}"
            )

    def mac(self, sender: Principal, receiver: Principal,
            payload: Any) -> Mac:
        """Authenticate ``payload`` on the pairwise channel."""
        return self.mac_digest(sender, receiver, digest_of(payload))

    def mac_digest(self, sender: Principal, receiver: Principal,
                   digest: Digest) -> Mac:
        """MAC an already computed digest.

        The fan-out fast path: an n-way authenticated broadcast hashes the
        payload once and derives n channel tokens from the digest, instead
        of hashing the payload n times.
        """
        token = _sha256(
            self._mac_prefix + sender.encode() + receiver.encode()
            + digest.value
        ).digest()
        return Mac(sender, receiver, digest, token)

    def verify_mac(self, mac: Mac, payload: Any) -> bool:
        """Check a MAC against a payload."""
        digest = digest_of(payload)
        sender, receiver, mac_digest, token = mac
        return (
            mac_digest.value == digest.value
            and token == _sha256(
                self._mac_prefix + sender.encode() + receiver.encode()
                + digest.value
            ).digest()
        )

    def verify_mac_digest(self, mac: Mac, digest: Digest) -> bool:
        """Check a MAC against an already computed payload digest.

        The delivery-time fast path: the transport hashes a fan-out's
        body once and hands the digest to each receiver, which then only
        derives the channel token instead of re-hashing the payload.
        """
        sender, receiver, mac_digest, token = mac
        return (
            mac_digest.value == digest.value
            and token == _sha256(
                self._mac_prefix + sender.encode() + receiver.encode()
                + digest.value
            ).digest()
        )

    def forge_attempt(self, forger: Principal, victim: Principal,
                      payload: Any) -> Signature:
        """Produce the *invalid* signature a Byzantine ``forger`` would get
        when trying to sign as ``victim``.

        The token is derived from the forger's own key, so verification
        against ``victim`` always fails.  Used by the adversary models in the
        test suite to demonstrate unforgeability.
        """
        digest = digest_of(payload)
        return Signature(victim, digest, self._sig_token(forger, digest))
