"""Simulated cryptography with real integrity semantics and a CPU cost model.

The paper (Section 2) assumes non-crash-faulty machines "cannot break
cryptographic primitives".  We model this directly: a signature object is an
opaque token bound to ``(signer, digest)`` that the verifier checks against
the claimed signer -- a Byzantine replica can replay signatures it has seen
but can never mint one for content another machine did not sign.

The :class:`CostModel` attaches virtual-CPU microsecond costs to each
operation, calibrated to the paper's RSA1024 signatures and HMAC-SHA1 MACs,
which drives the Figure 8 CPU-usage experiment.
"""

from repro.crypto.primitives import (
    Digest,
    KeyStore,
    Mac,
    Signature,
    digest_of,
)
from repro.crypto.authenticators import (
    MAC_VECTOR,
    MODELED_MAC,
    NULL,
    SIGNATURE,
    Authenticator,
    authenticator_for,
    register,
)
from repro.crypto.costs import CostModel, CpuMeter

__all__ = [
    "Digest",
    "Signature",
    "Mac",
    "KeyStore",
    "digest_of",
    "CostModel",
    "CpuMeter",
    "Authenticator",
    "authenticator_for",
    "register",
    "MAC_VECTOR",
    "MODELED_MAC",
    "NULL",
    "SIGNATURE",
]
