"""Transport-level authenticator policies (the delivery-time MAC model).

Motivation
----------

XPaxos's common case and its PreChk fault-detection channel authenticate
with *per-receiver* MAC vectors (Section 4.2): the same logical message is
accompanied by a different authenticator on every channel.  Modelling that
by embedding a :class:`~repro.crypto.primitives.Mac` object inside the
payload has two costs:

* every fan-out degenerates into n sequential :meth:`Network.send` calls
  (each destination needs a different payload object), locking the
  protocol out of the multicast fast path; and
* the payload digest is recomputed once per receiver, even though the
  MAC token derivation is the only part that actually differs per channel.

This module moves authentication out of the payload and into the
transport.  A message class is registered with an :class:`Authenticator`
policy; :meth:`Network.multicast_authenticated` asks the policy for a
per-fan-out context once (typically the payload digest) and stamps the
per-receiver authenticator *at delivery fan-out time*.  The receiver's
runtime verifies the authenticator before the message reaches the
protocol handler, so forged or cross-channel-replayed messages are
dropped at the transport -- exactly where a real deployment's
authenticated channels would drop them.

Policies
--------

* :class:`MacVectorAuthenticator` -- a real per-receiver MAC: the payload
  digest is computed once per fan-out, the channel token once per
  receiver, and every delivery is verified (digest match + token match +
  channel binding).  Used for the channels whose authentication the
  repository actually exercises adversarially (XPaxos PreChk and client
  replies).
* :class:`SignatureAuthenticator` -- one digital signature shared by all
  receivers, verified on delivery.  Available for protocols that want
  transport-level signing without embedding the signature in the payload.
* :class:`ModeledMacAuthenticator` -- the baselines' fidelity level: the
  CPU cost and wire bytes of an HMAC vector are accounted, but no token
  is materialised and nothing is verified on delivery (the baselines are
  evaluated under crash faults only, where forgery is not modelled).
* :class:`NullAuthenticator` -- for message classes that are already
  self-authenticating (XPaxos protocol messages embed digital signatures
  in their payloads); the transport adds no bytes and no checks.

Wire accounting: each receiver is charged ``size_bytes +
policy.auth_bytes`` -- the authenticator bytes that receiver actually
sees -- by the network layer.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Type

from repro.crypto.costs import CpuMeter
from repro.crypto.primitives import (
    Digest,
    KeyStore,
    Mac,
    Principal,
    Signature,
    _sha256,
    digest_of,
)

#: Wire size of one HMAC-SHA1 authenticator (the paper's channel MAC).
MAC_BYTES = 20
#: Wire size of one RSA1024 signature.
SIG_BYTES = 128


class Authenticator:
    """One authentication policy for a class of messages.

    ``begin`` runs once per fan-out and returns the shared context
    (digest, signature, or None); ``stamp`` runs once per receiver and
    returns that channel's authenticator; ``verify`` runs on delivery.
    ``charge_send`` accounts the sender's CPU for an n-way fan-out.
    """

    name = "abstract"
    #: Authenticator bytes each receiver sees on the wire.
    auth_bytes = 0
    #: Does the receiving runtime verify (and drop on failure)?
    verify_on_delivery = False

    def begin(self, keystore: KeyStore, sender: Principal,
              body: Any) -> Any:
        """Per-fan-out shared context (default: none)."""
        return None

    def stamp(self, keystore: KeyStore, sender: Principal,
              receiver: Principal, context: Any) -> Any:
        """Per-receiver authenticator (default: none)."""
        return None

    def context_digest(self, context: Any) -> Optional[Digest]:
        """The body digest carried by a fan-out context, if any.

        The transport publishes it through ``Network.delivery_digest``
        while a delivery callback runs, so the receiving runtime can hand
        it back to :meth:`verify` as ``body_digest`` and skip re-hashing
        a payload the transport itself hashed (default: no digest).
        """
        return None

    def verify(self, keystore: KeyStore, cpu: CpuMeter, sender: Principal,
               receiver: Principal, body: Any, auth: Any,
               size_bytes: int = 0,
               body_digest: Optional[Digest] = None) -> bool:
        """Delivery-time check (default: accept).

        ``body_digest`` is the transport-computed digest of ``body``
        (from ``Network.delivery_digest``); policies may trust it in
        place of re-hashing the payload.  Callers outside the transport
        (e.g. forged-injection tests calling the receiver directly) pass
        ``None`` and get the full check.
        """
        return True

    def charge_send(self, cpu: CpuMeter, receivers: int,
                    size_bytes: int = 0) -> None:
        """Sender-side CPU for stamping an n-way fan-out (default: free)."""


class NullAuthenticator(Authenticator):
    """No transport authentication: the payload is self-authenticating
    (it embeds digital signatures) or the channel is not modelled."""

    name = "null"


class MacVectorAuthenticator(Authenticator):
    """A real per-receiver MAC vector, stamped at delivery fan-out time.

    The payload digest is computed once per fan-out (``begin``); each
    receiver's MAC reuses it, so an n-way broadcast performs one payload
    hash plus n cheap channel-token derivations instead of n payload
    hashes.  Every delivery is verified: digest match (content), token
    match (key) and channel binding (sender/receiver names).
    """

    name = "mac-vector"
    auth_bytes = MAC_BYTES
    verify_on_delivery = True

    def begin(self, keystore: KeyStore, sender: Principal,
              body: Any) -> Digest:
        return digest_of(body)

    def stamp(self, keystore: KeyStore, sender: Principal,
              receiver: Principal, context: Digest) -> Mac:
        # Inlined keystore.mac_digest (keep in sync): stamp runs once
        # per receiver per fan-out, and the delegation frame was the
        # single biggest non-hash cost on the stamping path.
        token = _sha256(
            keystore._mac_prefix + sender.encode() + receiver.encode()
            + context.value
        ).digest()
        return Mac(sender, receiver, context, token)

    def context_digest(self, context: Digest) -> Optional[Digest]:
        return context

    def verify(self, keystore: KeyStore, cpu: CpuMeter, sender: Principal,
               receiver: Principal, body: Any, auth: Any,
               size_bytes: int = 0,
               body_digest: Optional[Digest] = None) -> bool:
        cpu.charge_mac(size_bytes)
        # Mac is a tuple subclass laid out (sender, receiver, digest,
        # token); index access skips the property descriptors on the
        # per-delivery path.
        if not (isinstance(auth, Mac) and auth[0] == sender
                and auth[1] == receiver):
            return False
        if body_digest is not None:
            return keystore.verify_mac_digest(auth, body_digest)
        return keystore.verify_mac(auth, body)

    def charge_send(self, cpu: CpuMeter, receivers: int,
                    size_bytes: int = 0) -> None:
        cpu.charge_macs(receivers, size_bytes)


class SignatureAuthenticator(Authenticator):
    """One digital signature shared by every receiver of the fan-out."""

    name = "signature"
    auth_bytes = SIG_BYTES
    verify_on_delivery = True

    def begin(self, keystore: KeyStore, sender: Principal,
              body: Any) -> Signature:
        return keystore.sign(sender, body)

    def stamp(self, keystore: KeyStore, sender: Principal,
              receiver: Principal, context: Signature) -> Signature:
        return context

    def context_digest(self, context: Signature) -> Optional[Digest]:
        # The transport signed the very body object it delivers, so the
        # signature's digest *is* the trusted digest of that body.
        return context.digest if context is not None else None

    def verify(self, keystore: KeyStore, cpu: CpuMeter, sender: Principal,
               receiver: Principal, body: Any, auth: Any,
               size_bytes: int = 0,
               body_digest: Optional[Digest] = None) -> bool:
        cpu.charge_verify()
        if not (isinstance(auth, Signature) and auth.signer == sender):
            return False
        if body_digest is not None:
            return keystore.verify_digest(auth, body_digest)
        return keystore.verify(auth, body)

    def charge_send(self, cpu: CpuMeter, receivers: int,
                    size_bytes: int = 0) -> None:
        if receivers > 0:
            cpu.charge_sign()


class ModeledMacAuthenticator(Authenticator):
    """The CFT/BFT baselines' channel MACs: CPU and wire bytes are
    accounted, but no token is materialised and deliveries are not
    verified (those protocols are evaluated under crash faults only,
    where nothing can forge a message).  Receiver-side CPU stays in the
    protocol handlers, as it always has for the baselines."""

    name = "modeled-mac"
    auth_bytes = MAC_BYTES

    def charge_send(self, cpu: CpuMeter, receivers: int,
                    size_bytes: int = 0) -> None:
        cpu.charge_macs(receivers, size_bytes)


#: Shared policy instances (policies are stateless).
NULL = NullAuthenticator()
MAC_VECTOR = MacVectorAuthenticator()
SIGNATURE = SignatureAuthenticator()
MODELED_MAC = ModeledMacAuthenticator()

_REGISTRY: Dict[Type, Authenticator] = {}


def register(message_class: Type, policy: Authenticator) -> Type:
    """Bind ``message_class`` to an authenticator policy.

    Idempotent for the same policy; re-binding to a different policy is a
    programming error (two subsystems disagreeing about a channel's
    authentication would silently weaken one of them).
    """
    current = _REGISTRY.get(message_class)
    if current is not None and current is not policy:
        raise ValueError(
            f"{message_class.__name__} already registered with "
            f"{current.name}, refusing {policy.name}")
    _REGISTRY[message_class] = policy
    return message_class


def authenticator_for(message_class: Type) -> Optional[Authenticator]:
    """The policy bound to ``message_class`` (None if unregistered)."""
    return _REGISTRY.get(message_class)


def registered_classes() -> Dict[Type, Authenticator]:
    """A snapshot of the registry (for tests and documentation)."""
    return dict(_REGISTRY)
