"""CPU cost accounting for cryptographic operations (drives Figure 8).

The paper's implementation signs with RSA1024 and authenticates channels
with HMAC-SHA1 (Section 5.1.2) and reports the CPU usage of the most loaded
node (Section 5.3).  We reproduce that study by charging each simulated node
virtual CPU microseconds per operation and computing utilisation as busy
time over wall (virtual) time across the machine's cores.

Default costs are representative mid-2010s numbers for the paper's
primitives on the EC2 instances used (8 vCPUs):

* RSA1024 sign:   ~700 us  (private-key op, the expensive one)
* RSA1024 verify:  ~35 us  (public exponent is small)
* HMAC-SHA1:        ~1 us + ~2.5 us per kB hashed
* SHA-256 digest:   ~0.5 us + ~3 us per kB
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class CostModel:
    """Virtual CPU cost (microseconds) of each cryptographic operation."""

    sign_us: float = 700.0
    verify_us: float = 35.0
    mac_us: float = 1.0
    mac_per_kb_us: float = 2.5
    digest_us: float = 0.5
    digest_per_kb_us: float = 3.0
    cores: int = 8

    def sign_cost(self) -> float:
        """Cost of producing one digital signature."""
        return self.sign_us

    def verify_cost(self) -> float:
        """Cost of verifying one digital signature."""
        return self.verify_us

    def mac_cost(self, size_bytes: int = 0) -> float:
        """Cost of computing or verifying one MAC over ``size_bytes``."""
        return self.mac_us + self.mac_per_kb_us * (size_bytes / 1024.0)

    def digest_cost(self, size_bytes: int = 0) -> float:
        """Cost of hashing ``size_bytes``."""
        return self.digest_us + self.digest_per_kb_us * (size_bytes / 1024.0)

    @classmethod
    def free(cls) -> "CostModel":
        """A zero-cost model for tests that do not study CPU."""
        return cls(sign_us=0.0, verify_us=0.0, mac_us=0.0, mac_per_kb_us=0.0,
                   digest_us=0.0, digest_per_kb_us=0.0)


class CpuMeter:
    """Accumulates per-node CPU busy time, by operation category.

    Utilisation is reported the way ``top`` reports it in the paper's
    Figure 8: percent of one core, so a fully busy 8-core machine shows
    800%.
    """

    def __init__(self, cost_model: CostModel) -> None:
        self.cost_model = cost_model
        self._busy_us: float = 0.0
        self._by_category: Dict[str, float] = {}

    @property
    def busy_us(self) -> float:
        """Total accumulated busy time in microseconds."""
        return self._busy_us

    def charge(self, category: str, cost_us: float) -> None:
        """Record ``cost_us`` of CPU work under ``category``."""
        if not cost_us:
            # Zero-cost models (tests, latency-only studies) charge on
            # every MAC/digest; skip the bookkeeping, which is a no-op.
            # Negative costs are truthy and still reach the raise below.
            return
        if cost_us < 0:
            raise ValueError(f"negative CPU cost {cost_us}")
        self._busy_us += cost_us
        self._by_category[category] = (
            self._by_category.get(category, 0.0) + cost_us
        )

    def charge_sign(self) -> None:
        """Charge one signature generation."""
        self.charge("sign", self.cost_model.sign_cost())

    def charge_verify(self) -> None:
        """Charge one signature verification."""
        self.charge("verify", self.cost_model.verify_cost())

    def charge_mac(self, size_bytes: int = 0) -> None:
        """Charge one MAC computation/verification.

        Flattened (no ``mac_cost``/``charge`` delegation): this is the
        per-delivery charge on the authenticated hot path.
        """
        cm = self.cost_model
        cost_us = cm.mac_us + cm.mac_per_kb_us * (size_bytes / 1024.0)
        if not cost_us:
            return
        if cost_us < 0:
            raise ValueError(f"negative CPU cost {cost_us}")
        self._busy_us += cost_us
        self._by_category["mac"] = (
            self._by_category.get("mac", 0.0) + cost_us
        )

    def charge_macs(self, count: int, size_bytes: int = 0) -> None:
        """Charge ``count`` identical MAC computations in one call (the
        broadcast fast path charges the whole fan-out at once)."""
        if count > 0:
            self.charge("mac", count * self.cost_model.mac_cost(size_bytes))

    def charge_digest(self, size_bytes: int = 0) -> None:
        """Charge one digest computation."""
        self.charge("digest", self.cost_model.digest_cost(size_bytes))

    def utilisation_percent(self, elapsed_ms: float,
                            busy_since_us: float = 0.0) -> float:
        """CPU usage as percent-of-one-core over ``elapsed_ms``.

        ``busy_since_us`` subtracts busy time accumulated before the
        measurement window opened (a snapshot of :attr:`busy_us` taken at
        the end of warmup), so utilisation can be reported over the same
        window as throughput and latency.

        Capped at ``cores * 100`` -- a node cannot use more CPU than it has.
        """
        if elapsed_ms <= 0:
            return 0.0
        raw = 100.0 * ((self._busy_us - busy_since_us) / 1000.0) / elapsed_ms
        return min(max(raw, 0.0), self.cost_model.cores * 100.0)

    def breakdown(self) -> Dict[str, float]:
        """Busy microseconds per operation category."""
        return dict(self._by_category)

    def reset(self) -> None:
        """Zero the meter (used at the end of workload warmup)."""
        self._busy_us = 0.0
        self._by_category.clear()
