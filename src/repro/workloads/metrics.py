"""Measurement utilities: latency reservoirs and windowed throughput.

Latency is recorded per committed request in virtual milliseconds;
throughput is computed over fixed windows (1 s by default), matching how
the paper reports its latency-vs-throughput curves (Figures 7, 10) and the
throughput timeline under faults (Figure 9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class LatencySummary:
    """Aggregate latency statistics in milliseconds."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float


class LatencyRecorder:
    """Collects per-request latencies after a warmup cutoff."""

    def __init__(self, warmup_ms: float = 0.0) -> None:
        self.warmup_ms = warmup_ms
        self._samples: List[float] = []

    def record(self, now_ms: float, latency_ms: float) -> None:
        """Record one completion at virtual time ``now_ms``."""
        if now_ms >= self.warmup_ms:
            self._samples.append(latency_ms)

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self._samples)

    def summary(self) -> Optional[LatencySummary]:
        """Aggregate statistics, or None if nothing was recorded."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        n = len(ordered)

        def pct(q: float) -> float:
            index = min(n - 1, max(0, math.ceil(q * n) - 1))
            return ordered[index]

        return LatencySummary(
            count=n,
            mean=sum(ordered) / n,
            p50=pct(0.50),
            p95=pct(0.95),
            p99=pct(0.99),
            maximum=ordered[-1],
        )


class ThroughputRecorder:
    """Counts completions per fixed window of virtual time."""

    def __init__(self, window_ms: float = 1_000.0,
                 warmup_ms: float = 0.0) -> None:
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        self.window_ms = window_ms
        self.warmup_ms = warmup_ms
        self._windows: Dict[int, int] = {}
        self._total = 0
        self._first_ms: Optional[float] = None
        self._last_ms: Optional[float] = None

    def record(self, now_ms: float, count: int = 1) -> None:
        """Record ``count`` completions at virtual time ``now_ms``."""
        if now_ms < self.warmup_ms:
            return
        window = int(now_ms // self.window_ms)
        self._windows[window] = self._windows.get(window, 0) + count
        self._total += count
        if self._first_ms is None:
            self._first_ms = now_ms
        self._last_ms = now_ms

    @property
    def total(self) -> int:
        """Total completions recorded after warmup."""
        return self._total

    def mean_kops(self, duration_ms: float) -> float:
        """Average throughput in kops/s over an explicit duration."""
        if duration_ms <= 0:
            return 0.0
        return self._total / duration_ms  # ops/ms == kops/s

    def timeline(self) -> List[Tuple[float, float]]:
        """``(window start ms, kops/s)`` series -- the Figure 9 y-axis."""
        return [
            (w * self.window_ms, count / self.window_ms)
            for w, count in sorted(self._windows.items())
        ]

    def peak_kops(self) -> float:
        """Highest single-window throughput."""
        if not self._windows:
            return 0.0
        return max(self._windows.values()) / self.window_ms
