"""Benchmark workloads: closed/open-loop drivers and metrics collection."""

from repro.workloads.clients import (
    ClosedLoopDriver,
    WorkloadDriver,
    make_driver,
)
from repro.workloads.cohorts import CohortDriver
from repro.workloads.metrics import LatencyRecorder, ThroughputRecorder

__all__ = [
    "ClosedLoopDriver",
    "CohortDriver",
    "LatencyRecorder",
    "ThroughputRecorder",
    "WorkloadDriver",
    "make_driver",
]
