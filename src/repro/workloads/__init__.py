"""Benchmark workloads: closed-loop drivers and metrics collection."""

from repro.workloads.clients import ClosedLoopDriver
from repro.workloads.metrics import LatencyRecorder, ThroughputRecorder

__all__ = ["ClosedLoopDriver", "LatencyRecorder", "ThroughputRecorder"]
