"""Open-loop client-cohort workload driver.

The paper drives its throughput sweeps with closed-loop clients, which
caps offered load at ``num_clients / latency`` -- to push a protocol to
its real ceiling the load must keep arriving regardless of completions
("open loop").  Simulating one process per logical client would make such
sweeps cost millions of idle processes, so this driver models thousands
of logical clients per *cohort*: each cohort is one event-driven arrival
stream drawing Poisson inter-arrival gaps at its share of the aggregate
``offered_load_rps``.

Requests still travel through the real protocol clients attached to the
runtime (one cohort owns a disjoint slice of them, used as a channel
pool), so authentication, retransmission, and reply-quorum behavior are
exactly the per-request machinery the closed loop exercises.  When every
channel of a cohort is busy, further arrivals queue in the cohort's
backlog; latency is measured from the *arrival draw* to the commit, so
queueing delay is part of the reported latency exactly as it would be for
a real overloaded client population.  Past saturation the backlog grows
without bound and measured throughput plateaus at the protocol's
capacity -- which is the number the sweeps are after.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.common.config import WorkloadConfig
from repro.common.errors import ConfigurationError
from repro.smr.runtime import ClusterRuntime
from repro.workloads.clients import WorkloadDriver


class _Cohort:
    """One arrival stream over a private pool of protocol clients."""

    def __init__(self, driver: "CohortDriver", index: int,
                 channels: List[Any], rate_per_ms: float,
                 rng: random.Random) -> None:
        self.driver = driver
        self.index = index
        self.rng = rng
        self.rate_per_ms = rate_per_ms
        self.free: Deque[Any] = deque(channels)
        self.backlog: Deque[float] = deque()
        self.backlog_peak = 0
        for channel in channels:
            channel.on_commit = self._make_on_commit(channel)

    # -- arrival stream -------------------------------------------------
    def schedule_next(self) -> None:
        sim = self.driver.runtime.sim
        gap_ms = self.rng.expovariate(self.rate_per_ms)
        at = sim.now + gap_ms
        if at >= self.driver.workload.duration_ms:
            return
        sim.call_at(at, self._arrive, label=f"cohort-{self.index}")

    def _arrive(self) -> None:
        driver = self.driver
        now = driver.runtime.sim.now
        driver.note_arrival(now)
        if self.free:
            self._issue(self.free.popleft(), arrived_ms=now)
        else:
            self.backlog.append(now)
            if len(self.backlog) > self.backlog_peak:
                self.backlog_peak = len(self.backlog)
        self.schedule_next()

    # -- channel pool ----------------------------------------------------
    def _issue(self, channel, arrived_ms: float) -> None:
        if channel.crashed or channel.busy:
            # A crashed or wedged channel cannot carry the request; its
            # logical client keeps waiting in the backlog.
            self.backlog.appendleft(arrived_ms)
            return
        self.driver.arrived_at[channel.client_id] = arrived_ms
        _, op = self.driver._next_op(channel.client_id)
        channel.propose(op, size_bytes=self.driver.workload.request_size)

    def _make_on_commit(self, channel) -> Callable[[tuple, float], None]:
        def on_commit(rid: tuple, latency_ms: float) -> None:
            driver = self.driver
            now = driver.runtime.sim.now
            arrived = driver.arrived_at.pop(channel.client_id, None)
            if now < driver.workload.duration_ms:
                if arrived is not None:
                    # Open-loop latency runs from the arrival draw, so
                    # time spent queued behind other logical clients
                    # counts.
                    driver.latency.record(now, now - arrived)
                    driver.throughput.record(now)
                else:
                    # A commit with no matching arrival stamp: a
                    # duplicate/late completion for a request whose
                    # stamp was already consumed (e.g. a retransmit
                    # committing twice).  Count it instead of silently
                    # losing the sample, so lossy runs are visible in
                    # the driver report.
                    driver.dropped_samples += 1
            if driver._stopped or now >= driver.workload.duration_ms:
                return
            if self.backlog:
                self._issue(channel, arrived_ms=self.backlog.popleft())
            else:
                self.free.append(channel)

        return on_commit


class CohortDriver(WorkloadDriver):
    """Open-loop driver: Poisson arrivals over client-cohort channels.

    ``workload.offered_load_rps`` is the aggregate arrival rate, split
    evenly over ``workload.cohorts`` independent streams (each seeded from
    ``workload.seed`` and its cohort index, so runs are deterministic and
    cohorts stay decorrelated).  The runtime's protocol clients are
    partitioned round-robin over the cohorts as the channel pool.
    """

    def __init__(self, runtime: ClusterRuntime, workload: WorkloadConfig,
                 op_factory: Optional[Callable[[int, int], Any]] = None
                 ) -> None:
        super().__init__(runtime, workload, op_factory)
        if not workload.open_loop:
            raise ConfigurationError(
                "CohortDriver needs workload.offered_load_rps set")
        channels = runtime.clients
        cohorts = min(workload.cohorts, len(channels))
        rate_per_ms = workload.offered_load_rps / cohorts / 1000.0
        self.arrived_at: Dict[int, float] = {}
        self.offered = 0
        self._offered_measured = 0
        #: Commits that arrived without a matching arrival stamp
        #: (duplicate/late completions); their latency samples are
        #: unrecoverable and the count is surfaced via ExperimentResult.
        self.dropped_samples = 0
        self.cohorts = [
            _Cohort(self, index, channels[index::cohorts], rate_per_ms,
                    random.Random(f"{workload.seed}-cohort-{index}"))
            for index in range(cohorts)
        ]

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm every cohort's first arrival draw."""
        for cohort in self.cohorts:
            cohort.schedule_next()

    def note_arrival(self, now_ms: float) -> None:
        self.offered += 1
        if now_ms >= self.workload.warmup_ms:
            self._offered_measured += 1

    # -- reporting -------------------------------------------------------
    def offered_load_kops(self) -> float:
        """Measured arrival rate in kops/s over the measurement window."""
        if self.measured_duration_ms <= 0:
            return 0.0
        return self._offered_measured / self.measured_duration_ms

    @property
    def backlog(self) -> int:
        """Logical clients currently queued for a free channel."""
        return sum(len(c.backlog) for c in self.cohorts)

    @property
    def backlog_peak(self) -> int:
        """Largest backlog any single cohort reached."""
        return max((c.backlog_peak for c in self.cohorts), default=0)

    @property
    def saturated(self) -> bool:
        """True when arrivals outpaced commits (requests still queued)."""
        return self.backlog > 0
