"""Workload drivers: the shared driver interface and the closed loop.

"Clients issue requests in closed-loop: a client waits for a reply to its
current request before issuing a new request" (Section 5.1.3).  The
closed-loop driver below implements exactly that; the open-loop
:class:`~repro.workloads.cohorts.CohortDriver` models arrival-rate-driven
load instead.  Both share the :class:`WorkloadDriver` interface so the
harness (`ClusterRuntime` users, the scenario matrix, the Fig 7/9/10
benchmarks) can accept either; :func:`make_driver` picks the one the
workload config asks for.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.common.config import WorkloadConfig
from repro.smr.runtime import ClusterRuntime
from repro.workloads.metrics import LatencyRecorder, ThroughputRecorder


class WorkloadDriver:
    """Common state and reporting shared by every workload driver.

    Args:
        runtime: the cluster to drive.
        workload: sizes, duration, warmup, and (for the open loop) rates.
        op_factory: builds the next operation for a client
            (default: a monotone counter op for the null service).
    """

    def __init__(self, runtime: ClusterRuntime, workload: WorkloadConfig,
                 op_factory: Optional[Callable[[int, int], Any]] = None
                 ) -> None:
        self.runtime = runtime
        self.workload = workload
        self.op_factory = op_factory or (lambda client_id, seq: seq)
        self.latency = LatencyRecorder(warmup_ms=workload.warmup_ms)
        self.throughput = ThroughputRecorder(warmup_ms=workload.warmup_ms)
        self._issued: dict = {}
        self._stopped = False

    def start(self) -> None:
        """Arm the driver's first events. Subclasses implement."""
        raise NotImplementedError

    def run(self) -> None:
        """Start the driver and run the simulation to the configured end."""
        self.start()
        self.runtime.sim.run(until=self.workload.duration_ms)
        self._stopped = True

    def _next_op(self, client_id: int):
        """Next (seq, op) pair for ``client_id``'s request stream."""
        seq = self._issued.get(client_id, 0) + 1
        self._issued[client_id] = seq
        return seq, self.op_factory(client_id, seq)

    @property
    def measured_duration_ms(self) -> float:
        """Length of the measurement period (after warmup)."""
        return self.workload.duration_ms - self.workload.warmup_ms

    def mean_throughput_kops(self) -> float:
        """Mean committed throughput in kops/s over the measured period."""
        return self.throughput.mean_kops(self.measured_duration_ms)

    def mean_latency_ms(self) -> Optional[float]:
        """Mean commit latency, or None if nothing committed."""
        summary = self.latency.summary()
        return summary.mean if summary else None


class ClosedLoopDriver(WorkloadDriver):
    """Drives every attached client in a closed loop (the paper's model)."""

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm every client's first request at t=0 (staggered by a hair to
        avoid a thundering-herd artifact at the very first instant)."""
        base = self.runtime.sim.now
        clients = self.runtime.clients
        # Spread initial sends over the first millisecond by actual index:
        # with more than 100 clients the spacing shrinks so every client
        # still gets a distinct instant (a modulo would re-collide whole
        # cohorts at identical offsets, re-creating the herd).
        spacing = 0.01 if len(clients) <= 100 else 1.0 / len(clients)
        for index, client in enumerate(clients):
            client.on_commit = self._make_on_commit(client)
            self.runtime.sim.call_at(
                base + index * spacing, self._issue, args=(client,),
                label=f"start-{client.name}")

    def _make_on_commit(self, client) -> Callable[[tuple, float], None]:
        def on_commit(rid: tuple, latency_ms: float) -> None:
            now = self.runtime.sim.now
            # The measurement window is [warmup, duration): completions of
            # requests still in flight at the cutoff are not counted.
            if now < self.workload.duration_ms:
                self.latency.record(now, latency_ms)
                self.throughput.record(now)
            self._issue(client)

        return on_commit

    def _issue(self, client) -> None:
        if self._stopped or client.crashed:
            return
        if self.runtime.sim.now >= self.workload.duration_ms:
            return
        if client.busy:
            return
        _, op = self._next_op(client.client_id)
        client.propose(op, size_bytes=self.workload.request_size)


def make_driver(runtime: ClusterRuntime, workload: WorkloadConfig,
                op_factory: Optional[Callable[[int, int], Any]] = None
                ) -> WorkloadDriver:
    """Build the driver the workload config selects: the open-loop cohort
    driver when ``offered_load_rps`` is set, closed loop otherwise."""
    if workload.open_loop:
        from repro.workloads.cohorts import CohortDriver
        return CohortDriver(runtime, workload, op_factory)
    return ClosedLoopDriver(runtime, workload, op_factory)
