"""S-series: simulator-hygiene rules.

The simulator core is both a correctness boundary (callbacks run in a
single virtual-time loop; anything that blocks or aliases state corrupts
every protocol above it) and the hottest code in the repository (the
perf trajectory gates its event loop).  These rules pin the invariants
that keep it that way.
"""

from __future__ import annotations

import ast
from typing import Dict, Set, Tuple

from repro.analysis.base import (
    ModuleInfo,
    Rule,
    iter_loop_depth,
    path_contains,
    path_endswith,
    rule,
)

#: The only module allowed to manipulate the event heap directly.
_HEAP_ALLOWED = ("repro/sim/core.py",)

#: Modules whose classes sit on the simulator/network hot path.
_HOT_PATHS = ("repro/sim", "repro/net")

#: The simulated layers: code here runs inside simulator callbacks and
#: must never touch the host (the harness and CLI live outside the
#: simulation and do real I/O by design).
_SIM_LAYERS = ("repro/sim", "repro/net", "repro/protocols", "repro/smr",
               "repro/scenarios", "repro/faults", "repro/workloads",
               "repro/zk")

#: Blocking calls that stall the single-threaded event loop for real
#: wall-clock time (pair: ``mod.attr``; name: bare builtin).
_BLOCKING_PAIRS = frozenset({
    ("time", "sleep"),
    ("os", "system"),
    ("socket", "socket"), ("socket", "create_connection"),
    ("subprocess", "run"), ("subprocess", "call"),
    ("subprocess", "check_call"), ("subprocess", "check_output"),
    ("subprocess", "Popen"),
    ("urllib", "urlopen"), ("requests", "get"), ("requests", "post"),
})
_BLOCKING_NAMES = frozenset({"input", "open"})

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict",
                            "deque", "OrderedDict", "Counter"})


@rule
class MutableDefaultRule(Rule):
    """Mutable default arguments alias state across calls.

    A ``def f(x, acc=[])`` default is evaluated once and shared by every
    call -- in scheduled callbacks this aliases state across *events*
    (and, worse, across replicas when the callable is a method), which
    the determinism tests then chase as a heisenbug.  Defaults must be
    ``None`` with an explicit guard, or an immutable value.
    """

    id = "S001"
    title = "mutable default argument"

    def _check_defaults(self, node) -> None:
        args = node.args
        for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None]:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                self.report(default, "mutable default argument is "
                                     "evaluated once and shared by every "
                                     "call; use None and fill in inside "
                                     "the body")
            elif (isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in _MUTABLE_CALLS):
                self.report(default, f"default {default.func.id}() is "
                                     "evaluated once and shared by every "
                                     "call; use None and fill in inside "
                                     "the body")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)


@rule
class HeapOutsideCoreRule(Rule):
    """Direct ``heapq`` use belongs to ``sim/core.py`` alone.

    The event heap's invariants (light 5-tuple entries vs ``Event``
    objects, the same-tick fast lane, lazy cancellation, compaction)
    live behind ``Simulator.schedule``/``post``/``cancel``.  A second
    ``heapq`` user either duplicates those invariants or silently breaks
    them -- both have cost; schedule through the ``Simulator`` API
    instead.  Flagged at the import, one finding per module.
    """

    id = "S002"
    title = "heapq imported outside sim/core.py"

    def _check_import(self, node, names) -> None:
        if path_endswith(self._module, *_HEAP_ALLOWED):
            return
        if "heapq" in names:
            self.report(node, "direct heapq use outside sim/core.py; "
                              "go through the Simulator "
                              "schedule/post/cancel API")

    def visit_Import(self, node: ast.Import) -> None:
        self._check_import(node, [a.name for a in node.names])

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self._check_import(node, [node.module or ""])


@rule
class MissingSlotsHotClassRule(Rule):
    """Hot-path classes instantiated in loops need ``__slots__``.

    Objects created per event / per message inside the ``sim``/``net``
    loops dominate allocation; a ``__dict__``-bearing instance costs an
    extra allocation and roughly doubles the footprint, which the
    event-churn and storm benchmarks pay directly.  Any class defined in
    a hot module (``repro/sim``, ``repro/net``) whose constructor runs
    inside a ``for``/``while`` body or comprehension of a hot module
    must declare ``__slots__`` (``@dataclass(slots=True)`` counts).
    """

    id = "S003"
    title = "hot-loop class without __slots__"

    def __init__(self) -> None:
        super().__init__()
        #: class name -> (path, line, has_slots)
        self._hot_classes: Dict[str, Tuple[str, int, bool]] = {}
        #: class names instantiated at loop depth > 0 in hot modules.
        self._loop_instantiated: Dict[str, Tuple[str, int]] = {}

    def check_module(self, module: ModuleInfo):
        self._module = module
        self._findings = []
        if not path_contains(module, *_HOT_PATHS):
            return []
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                self._hot_classes.setdefault(
                    node.name,
                    (module.path, node.lineno, self._has_slots(node)))
        for node, depth in iter_loop_depth(module.tree):
            if (depth > 0 and isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)):
                self._loop_instantiated.setdefault(
                    node.func.id, (module.path, node.lineno))
        return []

    @staticmethod
    def _has_slots(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == "__slots__"
                    for t in stmt.targets):
                return True
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "__slots__"):
                return True
        for dec in node.decorator_list:
            if isinstance(dec, ast.Call) and any(
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in dec.keywords):
                return True
        return False

    def finish_project(self):
        findings = []
        for name in sorted(self._hot_classes):
            path, line, has_slots = self._hot_classes[name]
            if has_slots or name not in self._loop_instantiated:
                continue
            use_path, use_line = self._loop_instantiated[name]
            findings.append(self.emit(
                path, line,
                f"hot-path class {name} is instantiated inside a loop "
                f"({use_path}:{use_line}) but has no __slots__; add "
                f"__slots__ (or @dataclass(slots=True)) to keep the "
                f"allocation path flat"))
        return findings


@rule
class BlockingCallRule(Rule):
    """Blocking host I/O inside the simulated layers.

    Simulator callbacks run back-to-back in one thread of virtual time;
    a ``time.sleep``, socket call, subprocess or file read stalls the
    whole cluster for real wall-clock time and couples the run to host
    state.  The simulated layers (``sim``, ``net``, ``protocols``,
    ``smr``, ``scenarios``, ``faults``, ``workloads``, ``zk``) must not
    touch the host; real I/O belongs to the harness and CLI.
    """

    id = "S004"
    title = "blocking host I/O in a simulated layer"

    def visit_Call(self, node: ast.Call) -> None:
        if path_contains(self._module, *_SIM_LAYERS):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and (func.value.id, func.attr) in _BLOCKING_PAIRS):
                self.report(node, f"{func.value.id}.{func.attr}() blocks "
                                  "the virtual-time event loop; simulated "
                                  "layers must not do host I/O")
            elif (isinstance(func, ast.Name)
                    and func.id in _BLOCKING_NAMES):
                self.report(node, f"{func.id}() blocks the virtual-time "
                                  "event loop; simulated layers must not "
                                  "do host I/O")
        self.generic_visit(node)
