"""The lint driver: collect files, parse once, run rules, merge.

:func:`run_lint` is the single entry point used by the CLI and the
tests.  The pipeline per run:

1. walk the given paths for ``*.py`` files (sorted; ``__pycache__`` and
   hidden directories skipped), parse each into one shared AST;
2. run every selected rule over every module (file-local findings), then
   give each rule its cross-file :meth:`finish_project` pass;
3. drop findings silenced by inline ``# repro: lint-ok[ID]`` markers;
4. partition the rest against the committed baseline.

Everything is deterministic: files are visited in sorted order and
findings are reported sorted by ``(file, line, rule)``, so two runs over
the same tree produce byte-identical reports.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.base import ModuleInfo, make_rules
from repro.analysis.baseline import load_baseline, split_baseline
from repro.analysis.findings import Finding
from repro.analysis.suppressions import is_suppressed, suppressed_lines

REPORT_VERSION = 1

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis",
                        "node_modules"})


@dataclass
class LintReport:
    """The outcome of one lint run."""

    #: Findings that fail the run (not suppressed, not baselined).
    findings: List[Finding] = field(default_factory=list)
    #: Findings silenced by inline ``lint-ok`` markers.
    suppressed: List[Finding] = field(default_factory=list)
    #: Findings absorbed by the committed baseline.
    baselined: List[Finding] = field(default_factory=list)
    #: Baseline entries nothing matched -- these fail the run too.
    stale_baseline: List[Dict[str, Any]] = field(default_factory=list)
    files_checked: int = 0
    rules_run: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Does the run pass (no new findings, no stale baseline)?"""
        return not self.findings and not self.stale_baseline

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": REPORT_VERSION,
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules_run": self.rules_run,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline": self.stale_baseline,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Every ``*.py`` under ``paths`` (files accepted as-is), sorted.

    Raises ``FileNotFoundError`` for a path that does not exist -- a
    typoed lint target must fail loudly, not pass vacuously.
    """
    out = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in _SKIP_DIRS and not d.startswith("."))
                for name in files:
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        else:
            raise FileNotFoundError(f"lint path does not exist: {path}")
    return sorted(set(os.path.normpath(p).replace(os.sep, "/")
                      for p in out))


def parse_modules(
        files: Iterable[str]) -> Tuple[List[ModuleInfo], List[Finding]]:
    """Parse each file once; syntax errors become E000 findings
    (byte-compilation catches them too, but the linter must not crash
    mid-run on one bad file)."""
    modules, errors = [], []
    for path in files:
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            errors.append(Finding(
                file=path, line=exc.lineno or 1, rule="E000",
                message=f"syntax error: {exc.msg}"))
            continue
        modules.append(ModuleInfo(path=path, tree=tree, source=source,
                                  lines=source.splitlines()))
    return modules, errors


def run_lint(
    paths: Sequence[str],
    only: Optional[Sequence[str]] = None,
    baseline_path: Optional[str] = None,
) -> LintReport:
    """Lint ``paths`` and return the merged :class:`LintReport`.

    ``only`` restricts the run to the named rule ids (unknown ids raise
    ``ValueError``); ``baseline_path`` points at the committed baseline
    (``None`` disables baseline handling entirely).
    """
    rules = make_rules(only=only)
    files = iter_python_files(paths)
    modules, raw = parse_modules(files)

    for module in modules:
        for rule in rules:
            raw.extend(rule.check_module(module))
    for rule in rules:
        raw.extend(rule.finish_project())

    # Inline suppressions are resolved against the module the finding
    # points into (cross-file rules report into modules other than the
    # one being visited when the finding surfaced).
    markers = {m.path: suppressed_lines(m.lines) for m in modules}
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in raw:
        if is_suppressed(finding, markers.get(finding.file, {})):
            suppressed.append(finding)
        else:
            kept.append(finding)

    entries = load_baseline(baseline_path) if baseline_path else []
    active = set(r.id for r in rules) if only else None
    new, baselined, stale = split_baseline(kept, entries,
                                           active_rules=active)

    def _order(f: Finding):
        return (f.file, f.line, f.rule)

    return LintReport(
        findings=sorted(new, key=_order),
        suppressed=sorted(suppressed, key=_order),
        baselined=sorted(baselined, key=_order),
        stale_baseline=sorted(
            stale, key=lambda e: (e["file"], e["line"], e["rule"])),
        files_checked=len(modules),
        rules_run=sorted(r.id for r in rules),
    )


def format_report(report: LintReport, verbose: bool = False) -> str:
    """Human-readable report text (the CLI's default output)."""
    lines = []
    for finding in report.findings:
        lines.append(finding.format())
    for entry in report.stale_baseline:
        lines.append(
            f"{entry['file']}:{entry['line']}: {entry['rule']} STALE "
            f"baseline entry: no matching finding -- the violation was "
            f"fixed or moved; remove the entry from the baseline")
    if verbose:
        for finding in report.suppressed:
            lines.append(f"{finding.format()} (suppressed by lint-ok)")
        for finding in report.baselined:
            lines.append(f"{finding.format()} (baselined)")
    summary = (
        f"{len(report.findings)} finding(s), "
        f"{len(report.stale_baseline)} stale baseline entr(ies), "
        f"{len(report.suppressed)} suppressed, "
        f"{len(report.baselined)} baselined "
        f"across {report.files_checked} file(s), "
        f"{len(report.rules_run)} rule(s)")
    lines.append(("FAIL: " if not report.ok else "lint ok: ") + summary)
    return "\n".join(lines)
