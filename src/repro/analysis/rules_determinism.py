"""D-series: determinism rules.

Every experiment in this repository must replay byte-identically from
its seed (the scenario golden, the parallel-merge contract and the perf
``results_match`` assertions all depend on it).  The runtime already
guards part of this -- ``guard_global_rng`` raises on a module-level RNG
draw inside a matrix cell -- but a static pass catches the whole class
of bug at lint time, before an 85-cell matrix run ever starts.
"""

from __future__ import annotations

import ast

from repro.analysis.base import ModuleInfo, Rule, path_endswith, rule

#: ``random`` module attributes that draw from (or reseed) the shared
#: global stream.  ``Random``/``getstate``/``setstate`` are deliberately
#: absent: constructing a seeded instance is the *sanctioned* idiom, and
#: the parallel executor snapshots state without drawing.
_GLOBAL_DRAWS = frozenset({
    "random", "randint", "randrange", "randbytes", "getrandbits",
    "choice", "choices", "shuffle", "sample", "uniform", "triangular",
    "betavariate", "expovariate", "gammavariate", "gauss",
    "lognormvariate", "normalvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate", "binomialvariate", "seed",
})

#: Entropy sources that can never be replayed from a seed at all.
_ENTROPY_CALLS = frozenset({
    ("os", "urandom"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
    ("random", "SystemRandom"),
    ("secrets", "token_bytes"),
    ("secrets", "token_hex"),
    ("secrets", "token_urlsafe"),
    ("secrets", "randbelow"),
    ("secrets", "choice"),
    ("secrets", "randbits"),
})

#: Wall-clock reads.  Virtual time comes from ``Simulator.now``; real
#: time may only be read by the benchmark/profiling harness.
_WALL_CLOCK = frozenset({
    ("time", "time"), ("time", "time_ns"),
    ("time", "perf_counter"), ("time", "perf_counter_ns"),
    ("time", "monotonic"), ("time", "monotonic_ns"),
    ("time", "process_time"), ("time", "process_time_ns"),
})

#: ``datetime``-style "what time is it" constructors.
_NOW_ATTRS = frozenset({"now", "utcnow", "today"})

#: The only modules allowed to read the host clock: the perf harness
#: times real seconds by definition, and the profiler wraps cProfile.
_WALL_CLOCK_ALLOWED = ("repro/harness/perf.py",
                      "repro/harness/profiling.py")

#: The seeded-stream helpers themselves.
_RNG_ALLOWED = ("repro/common/rng.py",)


def _dotted_pair(func: ast.AST):
    """``("mod", "attr")`` for a ``mod.attr`` callee, else ``None``."""
    if (isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)):
        return (func.value.id, func.attr)
    return None


@rule
class GlobalRngRule(Rule):
    """Module-level RNG draws escape the seeded-stream discipline.

    Every stochastic component must draw from a ``random.Random`` stream
    derived via ``repro.common.rng.stream`` -- the module-level
    ``random.*`` functions share one hidden global state, so any draw
    perturbs every other undisciplined drawer, and forked ``--jobs``
    workers inherit (and then diverge from) the parent's state.  The
    runtime guard (``guard_global_rng``) catches this only when the
    offending path actually executes inside a cell; this rule catches it
    in any code path at lint time.  ``os.urandom``/``uuid.uuid4``/
    ``secrets`` are flagged unconditionally: they cannot be replayed
    from a seed at all.
    """

    id = "D001"
    title = "module-level RNG draw or unseedable entropy source"

    def visit_Call(self, node: ast.Call) -> None:
        pair = _dotted_pair(node.func)
        if pair is not None and not path_endswith(self._module,
                                                  *_RNG_ALLOWED):
            mod, attr = pair
            if mod == "random" and attr in _GLOBAL_DRAWS:
                self.report(node, f"module-level random.{attr}() draws "
                                  "from the shared global stream; derive "
                                  "a stream with repro.common.rng.stream")
            elif pair in _ENTROPY_CALLS:
                self.report(node, f"{mod}.{attr}() is unseedable "
                                  "entropy; runs using it cannot be "
                                  "replayed from a seed")
        self.generic_visit(node)


@rule
class WallClockRule(Rule):
    """Wall-clock reads outside the benchmark/profiling harness.

    Simulated components must take time from ``Simulator.now`` (virtual
    milliseconds); a host-clock read smuggles nondeterminism into
    schedules, timeouts or serialized output.  Only ``harness/perf.py``
    and ``harness/profiling.py`` are allowed to call
    ``time.perf_counter`` and friends -- measuring real seconds is their
    entire job.
    """

    id = "D002"
    title = "wall-clock read outside the harness-timing allowlist"

    def visit_Call(self, node: ast.Call) -> None:
        if not path_endswith(self._module, *_WALL_CLOCK_ALLOWED):
            pair = _dotted_pair(node.func)
            if pair in _WALL_CLOCK:
                self.report(node, f"{pair[0]}.{pair[1]}() reads the host "
                                  "clock; simulated code must use "
                                  "Simulator.now (allowlist: "
                                  + ", ".join(_WALL_CLOCK_ALLOWED) + ")")
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr in _NOW_ATTRS
                    and self._names_datetime(node.func.value)):
                self.report(node, f"datetime.{node.func.attr}() reads "
                                  "the host clock; simulated code must "
                                  "use Simulator.now")
        self.generic_visit(node)

    @staticmethod
    def _names_datetime(value: ast.AST) -> bool:
        if isinstance(value, ast.Name):
            return value.id in ("datetime", "date")
        if isinstance(value, ast.Attribute):
            return value.attr in ("datetime", "date")
        return False


def _is_set_producing(node: ast.AST) -> bool:
    """Does this expression evaluate to a set (hash-ordered)?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)):
        # set algebra: ``set(a) & set(b)``, ``seen - done``, ... -- the
        # result is a set whenever either operand provably is one.
        return (_is_set_producing(node.left)
                or _is_set_producing(node.right))
    return False


@rule
class SetIterationRule(Rule):
    """Iterating a set feeds hash order into downstream behaviour.

    Set iteration order depends on element hashes -- for ``str`` keys
    that means ``PYTHONHASHSEED``, so the same seed can schedule, grade
    or serialize in a different order on a different host.  Any ``for``
    loop or comprehension whose iterable is provably a set (literal,
    ``set()``/``frozenset()`` call, set comprehension, or set algebra
    over one) must wrap it in ``sorted(...)`` to pin the order.
    """

    id = "D003"
    title = "iteration over an unordered set (PYTHONHASHSEED hazard)"

    def _check_iter(self, it: ast.AST) -> None:
        if _is_set_producing(it):
            self.report(it, "iteration order over a set is "
                            "hash-dependent; wrap the iterable in "
                            "sorted(...) to pin it")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for generator in node.generators:
            self._check_iter(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp
