"""B-series: bench/harness registration rules.

The perf-trajectory gate only sees benchmarks that
``suite_benchmarks()`` runs; a ``bench_*`` function that exists but is
not wired into the suite silently escapes regression gating.  This was
previously enforced by an inline shell one-liner in ``scripts/ci.sh``
importing :func:`repro.harness.perf.unregistered_benchmarks`; the rule
here is the same contract, checked statically at lint time.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.base import ModuleInfo, Rule, rule


@rule
class UnregisteredBenchmarkRule(Rule):
    """Every ``bench_*`` function must be run by ``suite_benchmarks()``.

    In any module that defines a top-level ``suite_benchmarks`` function
    (the suite registry -- ``repro/harness/perf.py`` in this tree),
    every top-level ``bench_*`` function must be referenced inside that
    registry's body.  An unreferenced benchmark never reaches ``repro
    bench``, so its perf regressions never trip the trajectory gate --
    the benchmark rots while appearing to exist.
    """

    id = "B001"
    title = "bench_* function not registered in suite_benchmarks()"

    def check_module(self, module: ModuleInfo) -> List:
        self._module = module
        self._findings = []
        suite = None
        benches = []
        for node in module.tree.body:
            if isinstance(node, ast.FunctionDef):
                if node.name == "suite_benchmarks":
                    suite = node
                elif node.name.startswith("bench_"):
                    benches.append(node)
        if suite is None or not benches:
            return []
        referenced: Set[str] = {
            n.id for n in ast.walk(suite) if isinstance(n, ast.Name)}
        for bench in benches:
            if bench.name not in referenced:
                self.report(
                    bench,
                    f"{bench.name} is not referenced by "
                    f"suite_benchmarks(), so it never runs under `repro "
                    f"bench` and escapes the perf-trajectory gate")
        found, self._findings = self._findings, []
        return found
