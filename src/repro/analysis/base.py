"""Rule framework: visitor-based rules, the registry, and path scoping.

A rule is an :class:`ast.NodeVisitor` subclass with a class-level ``id``,
``severity`` and a docstring that states the invariant it enforces (the
docstring is the rule catalog entry printed by ``repro lint
--list-rules`` and quoted in ``docs/static-analysis.md``).  File-local
rules override visitor methods and call :meth:`Rule.report`;
cross-file rules (the A-series registration check, the S-series hot-class
scan) additionally collect state per module and emit their findings from
:meth:`Rule.finish_project` once every module has been seen.

Rules are registered with the :func:`rule` decorator; the engine
instantiates a fresh rule object per run, so rules may keep mutable
project state on ``self`` without bleeding between runs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.analysis.findings import Finding, Severity


@dataclass
class ModuleInfo:
    """One parsed source file handed to every rule.

    ``path`` is the path as reported in findings (normalised to POSIX
    separators, relative to the lint invocation's working directory);
    ``parts`` is its component tuple for suffix scoping.
    """

    path: str
    tree: ast.Module
    source: str
    lines: List[str] = field(default_factory=list)

    @property
    def parts(self) -> Tuple[str, ...]:
        return tuple(self.path.split("/"))


def path_endswith(module: ModuleInfo, *suffixes: str) -> bool:
    """Does the module path end with any of the ``a/b.py`` suffixes?

    Matching is on whole path components, so ``sim/core.py`` matches
    ``src/repro/sim/core.py`` but not ``src/repro/sim/score.py``.
    """
    parts = module.parts
    for suffix in suffixes:
        want = tuple(suffix.split("/"))
        if len(parts) >= len(want) and parts[-len(want):] == want:
            return True
    return False


def path_contains(module: ModuleInfo, *fragments: str) -> bool:
    """Does the module path contain any ``a/b`` component run?

    ``repro/sim`` matches ``src/repro/sim/core.py`` anywhere in the
    path, again on whole components only.
    """
    parts = module.parts
    for fragment in fragments:
        want = tuple(fragment.split("/"))
        for i in range(len(parts) - len(want) + 1):
            if parts[i:i + len(want)] == want:
                return True
    return False


class Rule(ast.NodeVisitor):
    """Base class for one lint rule (see the module docstring)."""

    #: Stable identifier, ``<FAMILY><NNN>`` (e.g. ``D001``); suppression
    #: comments and baselines refer to findings by this id.
    id: str = ""
    #: One-line summary for ``--list-rules`` and the docs catalog.
    title: str = ""
    severity: Severity = Severity.ERROR

    def __init__(self) -> None:
        self._findings: List[Finding] = []
        self._module: Optional[ModuleInfo] = None

    # -- engine entry points ------------------------------------------------

    def check_module(self, module: ModuleInfo) -> List[Finding]:
        """Run this rule over one parsed module; returns its findings."""
        self._module = module
        self._findings = []
        self.visit(module.tree)
        found, self._findings = self._findings, []
        return found

    def finish_project(self) -> List[Finding]:
        """Cross-file findings, emitted after every module was checked."""
        return []

    # -- helpers for subclasses ---------------------------------------------

    def report(self, node: ast.AST, message: str,
               path: Optional[str] = None,
               line: Optional[int] = None) -> None:
        """Record a finding at ``node`` (or an explicit path/line)."""
        assert self._module is not None or path is not None
        self._findings.append(Finding(
            file=path if path is not None else self._module.path,
            line=line if line is not None else node.lineno,
            rule=self.id,
            message=message,
            severity=self.severity.value,
        ))

    def emit(self, path: str, line: int, message: str) -> Finding:
        """Build a finding detached from the current module (for
        :meth:`finish_project`)."""
        return Finding(file=path, line=line, rule=self.id,
                       message=message, severity=self.severity.value)


#: id -> rule class, in registration order (which fixes report ordering
#: for same-line findings).
RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add ``cls`` to the registry (ids are unique)."""
    if not cls.id:
        raise ValueError(f"{cls.__name__} has no rule id")
    existing = RULE_REGISTRY.get(cls.id)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"rule id {cls.id} already registered by {existing.__name__}")
    RULE_REGISTRY[cls.id] = cls
    return cls


def all_rule_classes() -> Dict[str, Type[Rule]]:
    """The full registry (importing the rule modules populates it)."""
    # Imported here so `import repro.analysis.base` alone cannot observe
    # a half-filled registry.
    from repro.analysis import (  # noqa: F401
        rules_authentication,
        rules_bench,
        rules_determinism,
        rules_simulator,
    )

    return dict(RULE_REGISTRY)


def make_rules(only: Optional[Sequence[str]] = None) -> List[Rule]:
    """Fresh rule instances, optionally restricted to the ids in ``only``.

    Raises ``ValueError`` on an unknown id, naming the known ones.
    """
    registry = all_rule_classes()
    if only:
        unknown = sorted(set(only) - set(registry))
        if unknown:
            raise ValueError(
                f"unknown rule(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(registry))}")
        wanted = set(only)
        return [cls() for rid, cls in registry.items() if rid in wanted]
    return [cls() for cls in registry.values()]


def iter_loop_depth(tree: ast.AST) -> Iterable[Tuple[ast.AST, int]]:
    """Yield ``(node, loop_depth)`` for every node, where ``loop_depth``
    counts enclosing per-iteration positions: ``for``/``while`` bodies
    and comprehension element expressions.  A ``for`` statement's
    iterable is evaluated once and stays at the enclosing depth."""
    def walk(node: ast.AST, depth: int) -> Iterable[Tuple[ast.AST, int]]:
        yield node, depth
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield from walk(node.iter, depth)
            yield from walk(node.target, depth + 1)
            for stmt in node.body + node.orelse:
                yield from walk(stmt, depth + 1)
        elif isinstance(node, ast.While):
            yield from walk(node.test, depth + 1)
            for stmt in node.body + node.orelse:
                yield from walk(stmt, depth + 1)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for child in ast.iter_child_nodes(node):
                yield from walk(child, depth + 1)
        else:
            for child in ast.iter_child_nodes(node):
                yield from walk(child, depth)

    return walk(tree, 0)
