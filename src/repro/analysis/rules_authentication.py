"""A-series: transport-authentication rules.

PR 5 moved authentication into the transport: a message class must be
bound to an :class:`~repro.crypto.authenticators.Authenticator` policy
or the runtime refuses to send it.  That refusal only happens when the
offending send actually executes -- a rarely-taken path (a view-change
edge, a detection accusation) can carry an unregistered message through
review and fail in production.  This rule finds the gap statically.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from repro.analysis.base import ModuleInfo, Rule, rule

#: The transport verbs whose payload argument must be a registered
#: message class: the ``Network``/runtime primitives plus the runtime's
#: self-including fan-out wrapper.
_SEND_METHODS = frozenset({
    "send", "multicast", "send_authenticated", "multicast_authenticated",
    "_fanout_with_self",
})

#: Functions that bind a class to a policy.  ``register`` is the
#: registry primitive; ``register_*`` covers wrappers like
#: ``protocols.base.register_modeled`` (usable as calls or decorators).
def _is_register_name(name: str) -> bool:
    return name == "register" or name.startswith("register_")


def _callee_name(func: ast.AST) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _is_messages_module(module: ModuleInfo) -> bool:
    """Is this a wire-message definition module?

    The convention covered by the rule: ``protocols/<name>/messages.py``
    and ``smr/messages.py``.
    """
    parts = module.parts
    if parts[-1] != "messages.py" or len(parts) < 2:
        return False
    return parts[-2] == "smr" or "protocols" in parts[:-1]


@rule
class UnregisteredWireMessageRule(Rule):
    """A sent wire-message dataclass must register an authenticator.

    For every ``@dataclass`` defined in a messages module
    (``protocols/*/messages.py``, ``smr/messages.py``) that appears as a
    payload of a transport send -- constructed directly inside a
    ``send*``/``multicast*`` call, or assigned to a local that is then
    passed to one -- there must be a static ``register(<Class>,
    <policy>)`` binding (direct call, ``register_*`` wrapper or
    decorator, or the tuple-loop idiom ``for _cls in (A, B): ...``).
    Without it the send raises only at runtime, on whatever rarely-taken
    path first exercises the message.  Classes never observed in a send
    call are exempt: envelope *contents* (``Request`` inside
    ``ClientRequestMsg``) are authenticated by their carrier.
    """

    id = "A001"
    title = "wire message sent without a static authenticator binding"

    def __init__(self) -> None:
        super().__init__()
        #: class name -> (path, line) of its definition.
        self._message_classes: Dict[str, Tuple[str, int]] = {}
        self._registered: Set[str] = set()
        #: callee name observed as a send payload -> (path, line) of the
        #: first send site (resolved against classes and helpers at the
        #: end of the project pass).
        self._sent_callees: Dict[str, Tuple[str, int]] = {}
        #: helper function name -> the class its ``return Cls(...)``
        #: constructs (one level: ``vc = self._build_vc(); send(vc)``).
        self._helper_returns: Dict[str, str] = {}

    # -- per-module collection ----------------------------------------------

    def check_module(self, module: ModuleInfo):
        self._module = module
        self._findings = []
        if _is_messages_module(module):
            self._collect_message_classes(module)
        self._collect_registrations(module.tree)
        self._collect_sends(module)
        return []

    def _collect_message_classes(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            is_dataclass = any(
                _callee_name(d.func) == "dataclass"
                if isinstance(d, ast.Call) else _callee_name(d) == "dataclass"
                for d in node.decorator_list)
            if is_dataclass:
                self._message_classes.setdefault(
                    node.name, (module.path, node.lineno))

    def _collect_registrations(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and _is_register_name(
                    _callee_name(node.func)):
                if node.args and isinstance(node.args[0], ast.Name):
                    self._registered.add(node.args[0].id)
            elif isinstance(node, ast.ClassDef):
                for dec in node.decorator_list:
                    name = _callee_name(
                        dec.func if isinstance(dec, ast.Call) else dec)
                    if _is_register_name(name):
                        self._registered.add(node.name)
            elif isinstance(node, ast.For):
                self._collect_loop_registration(node)

    def _collect_loop_registration(self, node: ast.For) -> None:
        """``for _cls in (A, B, C): register(_cls, POLICY)``"""
        if not (isinstance(node.target, ast.Name)
                and isinstance(node.iter, (ast.Tuple, ast.List))):
            return
        loop_var = node.target.id
        registers_loop_var = any(
            isinstance(inner, ast.Call)
            and _is_register_name(_callee_name(inner.func))
            and inner.args and isinstance(inner.args[0], ast.Name)
            and inner.args[0].id == loop_var
            for stmt in node.body for inner in ast.walk(stmt))
        if registers_loop_var:
            for element in node.iter.elts:
                if isinstance(element, ast.Name):
                    self._registered.add(element.id)

    def _collect_sends(self, module: ModuleInfo) -> None:
        """Record which class names flow into transport send calls.

        Resolution is deliberately shallow: a direct ``Cls(...)``
        argument, a Name argument previously assigned from ``Cls(...)``
        (or from a helper call) in the same function body, plus one
        level of helper indirection -- a function whose ``return`` is a
        ``Cls(...)`` marks ``Cls`` sent wherever that helper's result is
        passed to a transport verb.  That covers the codebase's send
        idioms; anything fancier still fails at runtime.
        """
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            assigned: Dict[str, str] = {}
            # Annotated parameters resolve too: a helper that takes
            # ``accusation: msg.FaultAccusation`` and forwards it to a
            # transport verb marks FaultAccusation as sent.
            all_args = (node.args.posonlyargs + node.args.args
                        + node.args.kwonlyargs)
            for arg in all_args:
                ann = arg.annotation
                if isinstance(ann, ast.Name):
                    assigned[arg.arg] = ann.id
                elif isinstance(ann, ast.Attribute):
                    assigned[arg.arg] = ann.attr
            for stmt in ast.walk(node):
                if (isinstance(stmt, ast.Assign)
                        and isinstance(stmt.value, ast.Call)):
                    cls = _callee_name(stmt.value.func)
                    for target in stmt.targets:
                        if isinstance(target, ast.Name) and cls:
                            assigned[target.id] = cls
            for stmt in ast.walk(node):
                if (isinstance(stmt, ast.Return)
                        and isinstance(stmt.value, ast.Call)):
                    returned = _callee_name(stmt.value.func)
                    if returned:
                        self._helper_returns.setdefault(node.name, returned)
                elif (isinstance(stmt, ast.Return)
                        and isinstance(stmt.value, ast.Name)):
                    returned = assigned.get(stmt.value.id)
                    if returned:
                        self._helper_returns.setdefault(node.name, returned)
            for stmt in ast.walk(node):
                if not (isinstance(stmt, ast.Call)
                        and _callee_name(stmt.func) in _SEND_METHODS):
                    continue
                where = (module.path, stmt.lineno)
                args = list(stmt.args) + [kw.value for kw in stmt.keywords]
                for arg in args:
                    if isinstance(arg, ast.Call):
                        cls = _callee_name(arg.func)
                        if cls:
                            self._sent_callees.setdefault(cls, where)
                    elif isinstance(arg, ast.Name):
                        cls = assigned.get(arg.id)
                        if cls:
                            self._sent_callees.setdefault(cls, where)

    # -- project verdict ----------------------------------------------------

    def finish_project(self):
        # Resolve observed send-payload callees: a callee is the class
        # itself, or a helper whose return constructs the class.
        sent: Dict[str, Tuple[str, int]] = {}
        for callee, where in self._sent_callees.items():
            resolved = callee if callee in self._message_classes else \
                self._helper_returns.get(callee)
            if resolved in self._message_classes:
                sent.setdefault(resolved, where)
        findings = []
        for name in sorted(self._message_classes):
            if name in self._registered or name not in sent:
                continue
            path, line = self._message_classes[name]
            sent_path, sent_line = sent[name]
            findings.append(self.emit(
                path, line,
                f"message dataclass {name} is passed to a transport "
                f"send ({sent_path}:{sent_line}) but never bound to an "
                f"authenticator policy via register(); the runtime will "
                f"refuse it at send time"))
        return findings


@rule
class FrozenMessageMutationRule(Rule):
    """``object.__setattr__`` outside ``__post_init__`` breaks the
    digest-cache immutability contract.

    ``digest_of`` memoizes digests on frozen wire-message instances and
    never invalidates them: a message mutated after its first digest
    would keep authenticating under the stale digest, silently
    defeating content tampering detection.  Frozen dataclasses may
    initialise derived fields in ``__post_init__`` (the instance has
    not escaped yet), and ``crypto/primitives.py`` owns the sanctioned
    memoization hook (:func:`cache_on_instance`); every other
    ``object.__setattr__`` is a frozen-instance mutation and is
    flagged.
    """

    id = "A002"
    title = "object.__setattr__ outside __post_init__ mutates a frozen message"

    def __init__(self) -> None:
        super().__init__()
        self._func_stack: List[str] = []

    def check_module(self, module: ModuleInfo):
        # The digest-cache implementation itself is the one sanctioned
        # mutation site.
        if module.parts[-2:] == ("crypto", "primitives.py"):
            return []
        self._func_stack = []
        return super().check_module(module)

    def visit_FunctionDef(self, node: ast.FunctionDef):
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Call(self, node: ast.Call):
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr == "__setattr__"
                and isinstance(func.value, ast.Name)
                and func.value.id == "object"
                and "__post_init__" not in self._func_stack):
            self.report(
                node,
                "object.__setattr__ outside __post_init__ mutates a "
                "frozen instance; messages are immutable once digested "
                "(the digest cache is never invalidated) -- initialise "
                "derived fields in __post_init__, or memoize derived "
                "values via crypto.primitives.cache_on_instance")
        self.generic_visit(node)
