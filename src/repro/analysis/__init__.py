"""Static analysis: the ``repro lint`` determinism & safety linter.

The runtime already enforces this repository's core invariants late --
``guard_global_rng`` raises on a module-level RNG draw mid-cell, the
authenticator registry refuses unregistered wire messages at send time
-- but a runtime check only fires on the path that happens to execute.
This package moves those checks left: a rule-based AST linter that
walks ``src``/``tests``/``benchmarks`` before a matrix run ever starts.

Rule families (full catalog with rationale: ``docs/static-analysis.md``):

* **D-series, determinism** -- module-level RNG draws and unseedable
  entropy (D001), wall-clock reads outside the timing harness (D002),
  hash-ordered set iteration (D003).
* **A-series, authentication** -- wire messages sent without a static
  authenticator binding (A001).
* **S-series, simulator hygiene** -- mutable default args (S001),
  ``heapq`` outside ``sim/core.py`` (S002), hot-loop classes without
  ``__slots__`` (S003), blocking host I/O in simulated layers (S004).
* **B-series, bench/harness** -- ``bench_*`` functions missing from the
  gated suite (B001).

Findings carry ``file:line``, a rule id and a message; one occurrence is
silenced inline with ``# repro: lint-ok[RULE-ID]``, inherited debt lives
in the committed baseline (``benchmarks/lint_baseline.json``) where
stale entries fail the run.  Entry point: :func:`run_lint` (the ``repro
lint`` CLI wraps it).
"""

from repro.analysis.base import (
    ModuleInfo,
    Rule,
    all_rule_classes,
    make_rules,
    rule,
)
from repro.analysis.baseline import (
    load_baseline,
    split_baseline,
    write_baseline,
)
from repro.analysis.engine import (
    LintReport,
    format_report,
    iter_python_files,
    run_lint,
)
from repro.analysis.findings import Finding, Severity

__all__ = [
    "Finding",
    "LintReport",
    "ModuleInfo",
    "Rule",
    "Severity",
    "all_rule_classes",
    "format_report",
    "iter_python_files",
    "load_baseline",
    "make_rules",
    "rule",
    "run_lint",
    "split_baseline",
    "write_baseline",
]
