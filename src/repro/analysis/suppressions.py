"""Inline suppression comments: ``# repro: lint-ok[RULE-ID]``.

A finding is suppressed when its line -- or a comment-only line directly
above it -- carries a ``lint-ok`` marker naming the finding's rule id
(comma-separate several ids to silence more than one rule at the same
site).  Suppressions are deliberately *narrow*: they match one rule at
one line, so a suppressed site that later grows a second violation of a
different rule still fails the lint.

The policy (see ``docs/static-analysis.md``): a suppression asserts "this
specific occurrence is intentional" and should sit next to a comment
saying why; findings that are merely *inherited* belong in the baseline
file instead, where staleness is tracked.
"""

from __future__ import annotations

import re
from typing import Dict, List, Set

from repro.analysis.findings import Finding

#: ``# repro: lint-ok[D001]`` / ``# repro: lint-ok[D001,S002]``
_MARKER = re.compile(
    r"#\s*repro:\s*lint-ok\[\s*([A-Za-z0-9_,\s-]+?)\s*\]")


def suppressed_lines(lines: List[str]) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the rule ids suppressed there.

    A marker on a comment-only line applies to the *next* line as well,
    so a suppression can sit above a long statement instead of pushing it
    past the line-length budget.
    """
    out: Dict[int, Set[str]] = {}
    for idx, text in enumerate(lines, start=1):
        match = _MARKER.search(text)
        if match is None:
            continue
        ids = {part.strip() for part in match.group(1).split(",")
               if part.strip()}
        out.setdefault(idx, set()).update(ids)
        if text.lstrip().startswith("#"):
            out.setdefault(idx + 1, set()).update(ids)
    return out


def is_suppressed(finding: Finding,
                  suppressions: Dict[int, Set[str]]) -> bool:
    """Is ``finding`` silenced by an inline marker in its module?"""
    return finding.rule in suppressions.get(finding.line, set())
