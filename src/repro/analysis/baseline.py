"""The committed lint baseline: grandfathered findings, tracked for rot.

``benchmarks/lint_baseline.json`` holds findings that predate a rule (or
are accepted for now) so a new rule can land strict without first fixing
the world.  The contract is a ratchet:

* a finding matching a baseline entry (same ``file``, ``rule``,
  ``line``) is reported as *baselined* and does not fail the lint;
* a baseline entry with no matching finding is **stale** -- the
  violation was fixed (or moved) but the entry remains -- and *does*
  fail the lint, so the file can only shrink truthfully.  Entries are
  line-exact on purpose: a finding that drifts to a new line must be
  re-examined, not silently re-absorbed.

``repro lint --write-baseline`` regenerates the file from the current
findings (sorted, stable) for the rare deliberate re-grandfathering.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.findings import Finding

BASELINE_VERSION = 1

#: Identity used for matching: mirrors ``Finding.key``.
Key = Tuple[str, str, int]


def load_baseline(path: str) -> List[Dict[str, Any]]:
    """The baseline entries (``[]`` when the file does not exist).

    Raises ``ValueError`` on a malformed file -- a truncated baseline
    must fail the lint loudly, not silently un-grandfather everything.
    """
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        return []
    except ValueError as exc:
        raise ValueError(f"malformed baseline {path}: {exc}") from exc
    if (not isinstance(payload, dict)
            or payload.get("version") != BASELINE_VERSION
            or not isinstance(payload.get("findings"), list)):
        raise ValueError(
            f"malformed baseline {path}: expected "
            f'{{"version": {BASELINE_VERSION}, "findings": [...]}}')
    for entry in payload["findings"]:
        if not (isinstance(entry, dict) and isinstance(entry.get("file"), str)
                and isinstance(entry.get("rule"), str)
                and isinstance(entry.get("line"), int)):
            raise ValueError(
                f"malformed baseline {path}: entry {entry!r} needs "
                f"string 'file'/'rule' and integer 'line'")
    return payload["findings"]


def write_baseline(path: str, findings: Iterable[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted for stable diffs)."""
    entries = [
        {"file": f.file, "rule": f.rule, "line": f.line,
         "message": f.message}
        for f in sorted(findings)
    ]
    with open(path, "w") as fh:
        json.dump({"version": BASELINE_VERSION, "findings": entries}, fh,
                  indent=2, sort_keys=False)
        fh.write("\n")


def split_baseline(
    findings: List[Finding],
    entries: List[Dict[str, Any]],
    active_rules: Optional[Set[str]] = None,
) -> Tuple[List[Finding], List[Finding], List[Dict[str, Any]]]:
    """Partition findings against the baseline.

    Returns ``(new, baselined, stale)``: findings not in the baseline,
    findings absorbed by it, and baseline entries nothing matched.  When
    ``active_rules`` is given (an ``--only`` run), entries for other
    rules are ignored rather than reported stale -- a narrowed run has
    no opinion on rules it did not execute.
    """
    keys: Set[Key] = {f.key for f in findings}
    considered = [
        e for e in entries
        if active_rules is None or e["rule"] in active_rules
    ]
    baseline_keys: Set[Key] = {
        (e["file"], e["rule"], e["line"]) for e in considered}
    new = [f for f in findings if f.key not in baseline_keys]
    baselined = [f for f in findings if f.key in baseline_keys]
    stale = [e for e in considered
             if (e["file"], e["rule"], e["line"]) not in keys]
    return new, baselined, stale
