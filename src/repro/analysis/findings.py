"""The linter's output vocabulary: findings and severities.

A :class:`Finding` is one rule violation at one source location.  The
identity used by suppression and baseline matching is the triple
``(file, rule, line)`` -- message text can be reworded without
invalidating a baseline, but a finding that moves to another line is a
*new* finding (the baseline is a ratchet, not a mute button; see
``docs/static-analysis.md``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Tuple


class Severity(str, enum.Enum):
    """How a finding affects the lint exit status.

    Every shipped rule is currently ``error`` -- the CI lint stage fails
    on any non-baselined finding.  ``warning`` exists so a future rule
    can be introduced observe-only before being promoted.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at ``file:line``."""

    file: str
    line: int
    rule: str
    message: str
    severity: str = Severity.ERROR.value

    @property
    def key(self) -> Tuple[str, str, int]:
        """Baseline/suppression identity: ``(file, rule, line)``."""
        return (self.file, self.rule, self.line)

    def format(self) -> str:
        """Human one-liner, ``file:line: RULE message`` (grep-friendly)."""
        return f"{self.file}:{self.line}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-report form (stable key order via dataclass field order)."""
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "severity": self.severity,
        }
