"""Fault injection and the anarchy-aware safety checker."""

from repro.faults.injector import FaultInjector, FaultSchedule
from repro.faults.adversary import (
    DataLossAdversary,
    EquivocatingAdversary,
    SilentAdversary,
)
from repro.faults.checker import SafetyChecker, check_total_order
from repro.faults.liveness import LivenessChecker, LivenessViolation

__all__ = [
    "FaultInjector",
    "FaultSchedule",
    "DataLossAdversary",
    "EquivocatingAdversary",
    "SilentAdversary",
    "SafetyChecker",
    "check_total_order",
    "LivenessChecker",
    "LivenessViolation",
]
