"""Scripted fault schedules: crashes, recoveries, partitions.

The Figure 9 experiment is a fault schedule: "At time 180 sec, we crash the
follower, VA.  At time 300 sec, we crash the CA replica.  At time 420 sec,
we crash the third replica, JP.  Each replica recovers 20 sec after having
crashed."  :class:`FaultSchedule` expresses exactly such timelines and
:class:`FaultInjector` executes them against a running cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.smr.runtime import ClusterRuntime


@dataclass(frozen=True)
class FaultEvent:
    """One scripted event in a fault schedule."""

    at_ms: float
    kind: str          # "crash" | "recover" | "partition" | "heal" | "suspect"
    replica: Optional[int] = None
    pair: Optional[Tuple[str, str]] = None

    def __post_init__(self) -> None:
        if self.kind in ("crash", "recover", "suspect") \
                and self.replica is None:
            raise ValueError(f"{self.kind} event needs a replica id")
        if self.kind in ("partition", "heal") and self.pair is None:
            raise ValueError(f"{self.kind} event needs a node pair")


@dataclass
class FaultSchedule:
    """An ordered list of fault events."""

    events: List[FaultEvent] = field(default_factory=list)

    def crash(self, at_ms: float, replica: int) -> "FaultSchedule":
        """Crash ``replica`` at ``at_ms``."""
        self.events.append(FaultEvent(at_ms, "crash", replica=replica))
        return self

    def recover(self, at_ms: float, replica: int) -> "FaultSchedule":
        """Recover ``replica`` at ``at_ms``."""
        self.events.append(FaultEvent(at_ms, "recover", replica=replica))
        return self

    def crash_for(self, at_ms: float, replica: int,
                  downtime_ms: float) -> "FaultSchedule":
        """Crash then recover after ``downtime_ms`` (the Figure 9 pattern)."""
        return self.crash(at_ms, replica).recover(at_ms + downtime_ms,
                                                  replica)

    def partition(self, at_ms: float, a: str, b: str) -> "FaultSchedule":
        """Block the pair ``(a, b)`` at ``at_ms``."""
        self.events.append(FaultEvent(at_ms, "partition", pair=(a, b)))
        return self

    def heal(self, at_ms: float, a: str, b: str) -> "FaultSchedule":
        """Unblock the pair ``(a, b)`` at ``at_ms``."""
        self.events.append(FaultEvent(at_ms, "heal", pair=(a, b)))
        return self

    def partition_for(self, at_ms: float, a: str, b: str,
                      downtime_ms: float) -> "FaultSchedule":
        """Block the pair, then heal it after ``downtime_ms``."""
        return self.partition(at_ms, a, b).heal(at_ms + downtime_ms, a, b)

    def isolate(self, at_ms: float, node: str,
                others: Sequence[str]) -> "FaultSchedule":
        """Block ``node`` from every node in ``others`` at ``at_ms``."""
        for other in others:
            if other != node:
                self.partition(at_ms, node, other)
        return self

    def heal_isolation(self, at_ms: float, node: str,
                       others: Sequence[str]) -> "FaultSchedule":
        """Unblock ``node`` from every node in ``others`` at ``at_ms``."""
        for other in others:
            if other != node:
                self.heal(at_ms, node, other)
        return self

    def suspect(self, at_ms: float, replica: int) -> "FaultSchedule":
        """Make ``replica`` suspect its current view at ``at_ms``.

        Triggers a view change without any actual crash or partition --
        the injector calls ``replica.suspect_view(replica.view)`` on
        protocols that support it (XPaxos); a no-op elsewhere.
        """
        self.events.append(FaultEvent(at_ms, "suspect", replica=replica))
        return self

    # -- composition ------------------------------------------------------
    def shift(self, offset_ms: float) -> "FaultSchedule":
        """A copy of this schedule with every event offset by
        ``offset_ms``."""
        return FaultSchedule([
            FaultEvent(e.at_ms + offset_ms, e.kind, replica=e.replica,
                       pair=e.pair)
            for e in self.events])

    def merge(self, other: "FaultSchedule") -> "FaultSchedule":
        """A new schedule containing the events of both, by time."""
        merged = FaultSchedule(list(self.events) + list(other.events))
        merged.events.sort(key=lambda e: e.at_ms)
        return merged

    def __add__(self, other: "FaultSchedule") -> "FaultSchedule":
        return self.merge(other)

    @property
    def end_ms(self) -> float:
        """Time of the last scripted event (0 when empty)."""
        return max((e.at_ms for e in self.events), default=0.0)

    # -- canned patterns --------------------------------------------------
    @classmethod
    def rolling_crashes(cls, replicas: Sequence[int], start_ms: float,
                        interval_ms: float,
                        downtime_ms: float) -> "FaultSchedule":
        """Crash each replica in turn, one at a time.

        ``downtime_ms`` must not exceed ``interval_ms`` if at most one
        replica should be down at any instant (the Figure 9 cadence).
        """
        schedule = cls()
        for index, replica in enumerate(replicas):
            schedule.crash_for(start_ms + index * interval_ms, replica,
                               downtime_ms)
        return schedule

    @classmethod
    def flapping_partition(cls, a: str, b: str, start_ms: float,
                           period_ms: float, flaps: int,
                           duty: float = 0.5) -> "FaultSchedule":
        """Block/heal the pair ``flaps`` times: each flap blocks for
        ``duty * period_ms`` then heals for the rest of the period."""
        if not 0.0 < duty < 1.0:
            raise ValueError(f"duty must be in (0, 1), got {duty}")
        schedule = cls()
        for flap in range(flaps):
            at = start_ms + flap * period_ms
            schedule.partition_for(at, a, b, duty * period_ms)
        return schedule

    @classmethod
    def figure9(cls, base_ms: float = 0.0,
                downtime_ms: float = 20_000.0) -> "FaultSchedule":
        """The paper's Figure 9 timeline (times in virtual ms).

        Replica ids follow Table 4's t=1 layout: 0 = CA (primary),
        1 = VA (follower), 2 = JP (passive).
        """
        schedule = cls()
        schedule.crash_for(base_ms + 180_000.0, 1, downtime_ms)  # VA
        schedule.crash_for(base_ms + 300_000.0, 0, downtime_ms)  # CA
        schedule.crash_for(base_ms + 420_000.0, 2, downtime_ms)  # JP
        return schedule


class FaultInjector:
    """Executes a :class:`FaultSchedule` against a cluster."""

    def __init__(self, runtime: ClusterRuntime) -> None:
        self.runtime = runtime
        self.injected: List[FaultEvent] = []

    def arm(self, schedule: FaultSchedule) -> None:
        """Schedule every event on the cluster's simulator."""
        for event in schedule.events:
            self.runtime.sim.call_at(
                event.at_ms,
                lambda e=event: self._fire(e),
                label=f"fault:{event.kind}")

    def _fire(self, event: FaultEvent) -> None:
        self.injected.append(event)
        if event.kind == "crash":
            assert event.replica is not None
            self.runtime.replica(event.replica).crash()
        elif event.kind == "recover":
            assert event.replica is not None
            self.runtime.replica(event.replica).recover()
        elif event.kind == "partition":
            assert event.pair is not None
            self.runtime.network.partitions.block_pair(*event.pair)
        elif event.kind == "heal":
            assert event.pair is not None
            self.runtime.network.partitions.unblock_pair(*event.pair)
        elif event.kind == "suspect":
            assert event.replica is not None
            replica = self.runtime.replica(event.replica)
            suspect = getattr(replica, "suspect_view", None)
            if suspect is not None and not replica.crashed:
                suspect(replica.view)

    # -- immediate (unscheduled) injection --------------------------------
    def crash_now(self, replica: int) -> None:
        """Crash a replica immediately."""
        self.runtime.replica(replica).crash()
        self.injected.append(FaultEvent(self.runtime.sim.now, "crash",
                                        replica=replica))

    def recover_now(self, replica: int) -> None:
        """Recover a replica immediately."""
        self.runtime.replica(replica).recover()
        self.injected.append(FaultEvent(self.runtime.sim.now, "recover",
                                        replica=replica))

    def isolate_now(self, replica: int) -> None:
        """Partition one replica from every other node immediately."""
        name = f"r{replica}"
        for other in self.runtime.network.names:
            if other != name:
                self.runtime.network.partitions.block_pair(name, other)
        self.injected.append(FaultEvent(self.runtime.sim.now, "partition",
                                        pair=(name, "*")))

    def heal_now(self, replica: int) -> None:
        """Heal all partitions involving one replica immediately."""
        self.runtime.network.partitions.heal_node(f"r{replica}")
        self.injected.append(FaultEvent(self.runtime.sim.now, "heal",
                                        pair=(f"r{replica}", "*")))
