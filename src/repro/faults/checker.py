"""Safety checker: total order across benign replicas, anarchy tracking.

The checker implements the paper's correctness criteria directly:

* **Total order** (safety, Section 2): for any two benign replicas, the
  sequences of requests they executed must be prefix-compatible, and no two
  benign replicas may execute different requests at the same sequence
  number *unless the system was in anarchy at some point* (Definition 3:
  an XFT protocol satisfies safety in all executions never in anarchy).
* **Validity**: every executed request was invoked by a client.
* **Anarchy tracking** (Definition 2): at any observation instant,
  ``anarchy <=> tnc > 0 and tnc + tc + tp > t``, with ``tp`` computed per
  Definition 1 from the network state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.net.partition import partitioned_replicas
from repro.reliability.models import anarchy
from repro.smr.runtime import ClusterRuntime


@dataclass
class SafetyViolation:
    """A detected divergence between benign replicas."""

    seqno: int
    replica_a: int
    replica_b: int
    rid_a: tuple
    rid_b: tuple

    def __str__(self) -> str:
        return (f"sn {self.seqno}: r{self.replica_a} executed {self.rid_a} "
                f"but r{self.replica_b} executed {self.rid_b}")


def check_total_order(traces: Dict[int, Sequence[tuple]]) -> List[SafetyViolation]:
    """Cross-check execution traces of benign replicas.

    Args:
        traces: ``replica id -> [(seqno, rid), ...]`` in execution order.

    Returns:
        All pairwise per-slot divergences (empty list = total order holds).

    Each slot may carry several requests (a batch); the per-slot request
    tuple must agree across replicas that executed the slot.
    """
    per_replica_slots: Dict[int, Dict[int, Tuple[tuple, ...]]] = {}
    for replica, trace in traces.items():
        slots: Dict[int, List[tuple]] = {}
        for seqno, rid in trace:
            slots.setdefault(seqno, []).append(rid)
        per_replica_slots[replica] = {sn: tuple(rids)
                                      for sn, rids in slots.items()}
    violations: List[SafetyViolation] = []
    replicas = sorted(per_replica_slots)
    for i, ra in enumerate(replicas):
        for rb in replicas[i + 1:]:
            slots_a, slots_b = per_replica_slots[ra], per_replica_slots[rb]
            for seqno in sorted(set(slots_a) & set(slots_b)):
                if slots_a[seqno] != slots_b[seqno]:
                    violations.append(SafetyViolation(
                        seqno=seqno, replica_a=ra, replica_b=rb,
                        rid_a=slots_a[seqno], rid_b=slots_b[seqno]))
    return violations


class SafetyChecker:
    """Continuously assesses a running cluster.

    Tracks which replicas are non-crash-faulty (declared by the test when it
    attaches an adversary), observes crashes and partitions, and can answer
    "was the system ever in anarchy?" -- the precondition of every XFT
    safety guarantee.
    """

    def __init__(self, runtime: ClusterRuntime,
                 non_crash_faulty: Iterable[int] = ()) -> None:
        self.runtime = runtime
        self.non_crash_faulty: Set[int] = set(non_crash_faulty)
        self.anarchy_observed = False
        self._observations: List[Tuple[float, bool]] = []

    def declare_non_crash_faulty(self, replica: int) -> None:
        """Mark a replica as Byzantine for anarchy accounting."""
        self.non_crash_faulty.add(replica)

    # ------------------------------------------------------------------
    def fault_counts(self) -> Tuple[int, int, int]:
        """Current ``(tnc, tc, tp)`` per Definitions 1-2."""
        config = self.runtime.config
        assert config.n is not None
        tnc = len(self.non_crash_faulty)
        crashed = {r.replica_id for r in self.runtime.replicas
                   if r.crashed and r.replica_id not in self.non_crash_faulty}
        tc = len(crashed)
        correct_up = [f"r{r.replica_id}" for r in self.runtime.replicas
                      if not r.crashed
                      and r.replica_id not in self.non_crash_faulty]
        partitioned = partitioned_replicas(
            correct_up,
            lambda a, b: self.runtime.network.timely(a, b,
                                                     config.delta_ms))
        tp = len(partitioned)
        return tnc, tc, tp

    def in_anarchy(self) -> bool:
        """Definition 2 evaluated right now."""
        tnc, tc, tp = self.fault_counts()
        return anarchy(self.runtime.config.t, tnc, tc, tp)

    def observe(self) -> bool:
        """Record one observation; returns whether anarchy holds now."""
        now_anarchy = self.in_anarchy()
        self._observations.append((self.runtime.sim.now, now_anarchy))
        self.anarchy_observed = self.anarchy_observed or now_anarchy
        return now_anarchy

    def observe_periodically(self, period_ms: float,
                             until_ms: float) -> None:
        """Schedule periodic observations on the simulator.

        One live event at a time (``Simulator.call_every``): arming a
        long horizon costs O(1) heap entries, not O(until/period).
        """
        self.runtime.sim.call_every(period_ms, self.observe, until_ms,
                                    label="safety-obs")

    # ------------------------------------------------------------------
    def benign_traces(self) -> Dict[int, Sequence[tuple]]:
        """Execution traces of all replicas not declared Byzantine."""
        return {r.replica_id: r.execution_trace
                for r in self.runtime.replicas
                if r.replica_id not in self.non_crash_faulty}

    def violations(self) -> List[SafetyViolation]:
        """Total-order violations among benign replicas."""
        return check_total_order(self.benign_traces())

    def assert_safe(self) -> None:
        """Raise AssertionError when safety is violated outside anarchy.

        This is *the* XFT guarantee (Definition 3): violations are only
        admissible if anarchy was observed at some point.
        """
        violations = self.violations()
        if violations and not self.anarchy_observed:
            raise AssertionError(
                "consistency violated outside anarchy: "
                + "; ".join(str(v) for v in violations[:5]))
