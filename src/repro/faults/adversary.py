"""Non-crash (Byzantine) adversary behaviours for XPaxos replicas.

An adversary object is attached to a replica via ``replica.byzantine``; the
replica consults it when emitting view-change messages, which is where the
paper's dangerous faults live (Section 4.4): a faulty replica cannot forge
signatures, so its only consistency-threatening moves are *omissions* (data
loss from its logs) and *replays of stale state*.

These adversaries drive the fault-detection tests (strong completeness) and
the anarchy experiments of the safety suite.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Iterable, Optional, Set

from repro.protocols.xpaxos import messages as msg

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocols.xpaxos.replica import XPaxosReplica


class Adversary:
    """Base adversary: behaves correctly (identity mutation)."""

    def mutate_view_change(self, replica: "XPaxosReplica",
                           vc: msg.ViewChange) -> msg.ViewChange:
        """Rewrite the outgoing view-change message. Default: unchanged."""
        return vc


class DataLossAdversary(Adversary):
    """Drops entries above ``keep_upto`` from the reported logs.

    This is the paper's canonical "data loss" fault (Section 4.4): a
    non-crash-faulty replica loses part of its commit log prior to a view
    change.  Outside anarchy this must be detected by FD; in anarchy it can
    violate consistency.
    """

    def __init__(self, keep_upto: int = 0,
                 lose_prepare_log: bool = True) -> None:
        self.keep_upto = keep_upto
        self.lose_prepare_log = lose_prepare_log

    def mutate_view_change(self, replica: "XPaxosReplica",
                           vc: msg.ViewChange) -> msg.ViewChange:
        commit_entries = tuple(
            (sn, e) for sn, e in vc.commit_entries if sn <= self.keep_upto)
        prepare_entries = vc.prepare_entries
        if prepare_entries is not None and self.lose_prepare_log:
            prepare_entries = tuple(
                (sn, e) for sn, e in prepare_entries
                if sn <= self.keep_upto)
        # Re-sign: the adversary owns its key, so the truncated message is
        # validly signed -- the *content* is the fault, not the signature.
        payload = msg.view_change_payload(
            vc.new_view, vc.sender, commit_entries, prepare_entries, None)
        sig = replica.keystore.sign(replica.principal, payload)
        return msg.ViewChange(
            new_view=vc.new_view, sender=vc.sender,
            commit_entries=commit_entries, checkpoint=None, sig=sig,
            prepare_entries=prepare_entries,
            prepare_view=vc.prepare_view, final_proof=vc.final_proof)


class StaleViewAdversary(Adversary):
    """Reports prepare-log entries re-stamped to an older view (fork-I)."""

    def __init__(self, stale_view: int = 0) -> None:
        self.stale_view = stale_view

    def mutate_view_change(self, replica: "XPaxosReplica",
                           vc: msg.ViewChange) -> msg.ViewChange:
        from repro.smr.log import PrepareEntry

        if vc.prepare_entries is None:
            return vc
        stale = tuple(
            (sn, PrepareEntry(e.seqno, self.stale_view, e.batch,
                              e.primary_sig))
            for sn, e in vc.prepare_entries)
        payload = msg.view_change_payload(
            vc.new_view, vc.sender, vc.commit_entries, stale, None)
        sig = replica.keystore.sign(replica.principal, payload)
        return msg.ViewChange(
            new_view=vc.new_view, sender=vc.sender,
            commit_entries=vc.commit_entries, checkpoint=vc.checkpoint,
            sig=sig, prepare_entries=stale,
            prepare_view=self.stale_view, final_proof=None)


class SilentAdversary(Adversary):
    """Withholds the view-change message entirely (modelled as empty logs).

    Equivalent to a crash from the view-change's perspective, but the
    replica keeps running in the common case -- useful for testing the
    ``n - t`` + 2-Delta collection rule.
    """

    def mutate_view_change(self, replica: "XPaxosReplica",
                           vc: msg.ViewChange) -> msg.ViewChange:
        payload = msg.view_change_payload(vc.new_view, vc.sender, (), None,
                                          None)
        sig = replica.keystore.sign(replica.principal, payload)
        return msg.ViewChange(
            new_view=vc.new_view, sender=vc.sender, commit_entries=(),
            checkpoint=None, sig=sig, prepare_entries=None,
            prepare_view=0, final_proof=None)


class EquivocatingAdversary(Adversary):
    """A faulty *primary* that, during view change, reports only a chosen
    subset of slots -- the fork pattern of the Appendix A example
    (Figure 11), where a non-crash-faulty ``s0`` reports only ``r0``.
    """

    def __init__(self, report_only: Iterable[int]) -> None:
        self.report_only: Set[int] = set(report_only)

    def mutate_view_change(self, replica: "XPaxosReplica",
                           vc: msg.ViewChange) -> msg.ViewChange:
        commit_entries = tuple(
            (sn, e) for sn, e in vc.commit_entries
            if sn in self.report_only)
        prepare_entries = vc.prepare_entries
        if prepare_entries is not None:
            prepare_entries = tuple(
                (sn, e) for sn, e in prepare_entries
                if sn in self.report_only)
        payload = msg.view_change_payload(
            vc.new_view, vc.sender, commit_entries, prepare_entries, None)
        sig = replica.keystore.sign(replica.principal, payload)
        return msg.ViewChange(
            new_view=vc.new_view, sender=vc.sender,
            commit_entries=commit_entries, checkpoint=None, sig=sig,
            prepare_entries=prepare_entries,
            prepare_view=vc.prepare_view, final_proof=vc.final_proof)
