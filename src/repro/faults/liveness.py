"""Liveness checker: commit progress within a bound while the system is
healthy.

The XFT availability guarantee is conditional: progress is promised only
when enough replicas are correct and synchronous (outside anarchy, with a
quorum up and connected).  :class:`LivenessChecker` operationalises that as
a windowed invariant over a running cluster:

    whenever the system has been *eligible* for longer than ``bound_ms``
    without a single new client-visible commit, a violation is recorded.

Eligibility defaults to the strictest healthy state -- every replica up and
no network partitions -- so stalls caused by injected faults never count,
but the system must resume committing within ``bound_ms`` of the last
fault healing.  Scenario authors can relax the predicate (e.g. to "a
quorum is up") through the ``eligible`` hook.

Like :meth:`SafetyChecker.observe_periodically`, sampling self-reschedules
one simulator event at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.smr.runtime import ClusterRuntime


@dataclass(frozen=True)
class LivenessViolation:
    """One window in which an eligible system failed to commit."""

    at_ms: float           # when the violation was flagged
    stalled_since_ms: float  # start of the commit-free eligible window

    def __str__(self) -> str:
        return (f"no commits in the {self.at_ms - self.stalled_since_ms:.0f}"
                f" ms up to t={self.at_ms:.0f} ms despite a healthy system")


def default_eligible(runtime: ClusterRuntime) -> bool:
    """Strict health: every replica up and no blocked pairs."""
    if any(r.crashed for r in runtime.replicas):
        return False
    return not runtime.network.partitions.blocked_pairs


class LivenessChecker:
    """Samples commit progress and flags stalls of a healthy cluster.

    Args:
        runtime: the cluster under observation.
        bound_ms: maximum tolerated commit-free eligible window.  Must
            comfortably exceed the protocol's view-change plus client
            retransmission timeouts, otherwise recovery itself is flagged.
        period_ms: sampling period.
        eligible: predicate deciding whether progress is currently
            *required* (default: :func:`default_eligible`).
    """

    def __init__(self, runtime: ClusterRuntime, bound_ms: float,
                 period_ms: float = 100.0,
                 eligible: Optional[Callable[[ClusterRuntime], bool]] = None
                 ) -> None:
        if bound_ms <= 0 or period_ms <= 0:
            raise ValueError("bound_ms and period_ms must be positive")
        self.runtime = runtime
        self.bound_ms = bound_ms
        self.period_ms = period_ms
        self.eligible = eligible or default_eligible
        self.violations: List[LivenessViolation] = []
        self._last_count = self._committed()
        #: Start of the current commit-free eligible streak (None while
        #: ineligible).
        self._stalled_since: Optional[float] = None
        #: Whether the streak in progress has already been reported.
        self._flagged = False

    # ------------------------------------------------------------------
    def _committed(self) -> int:
        """Client-visible commits: what liveness actually promises."""
        return sum(len(c.completions) for c in self.runtime.clients)

    def sample(self) -> None:
        """Take one observation at the current virtual time."""
        now = self.runtime.sim.now
        count = self._committed()
        progressed = count > self._last_count
        self._last_count = count
        if progressed or not self.eligible(self.runtime):
            # Commits happened, or the system is excused: reset the streak.
            self._stalled_since = None
            self._flagged = False
            return
        if self._stalled_since is None:
            self._stalled_since = now
            return
        if not self._flagged and now - self._stalled_since > self.bound_ms:
            self.violations.append(
                LivenessViolation(at_ms=now,
                                  stalled_since_ms=self._stalled_since))
            self._flagged = True

    def watch(self, until_ms: float) -> None:
        """Sample every ``period_ms`` until ``until_ms`` (inclusive),
        one live simulator event at a time."""
        self.runtime.sim.call_every(self.period_ms, self.sample, until_ms,
                                    label="liveness-obs")

    # ------------------------------------------------------------------
    def assert_live(self) -> None:
        """Raise AssertionError if any violation was recorded."""
        if self.violations:
            raise AssertionError(
                "liveness violated: "
                + "; ".join(str(v) for v in self.violations[:5]))
