#!/usr/bin/env python3
"""Fault-tolerance demo, written against the Scenario API.

Three acts, each one cell of the scenario conformance matrix
(:mod:`repro.scenarios` + :mod:`repro.harness.matrix`):

1. **Crash faults** -- the Figure 9 pattern (``rolling-crashes``): each
   replica crashes in turn; view changes keep the service alive.
2. **Network faults** -- a partitioned follower (``follower-isolated``);
   XPaxos rotates to a connected synchronous group.
3. **A non-crash fault** -- a data-loss adversary on the primary
   (``byzantine-primary-data-loss``); with fault detection enabled, the
   view change convicts it (Section 4.4) while the system stays outside
   anarchy.

The same cells regress in CI; run ``python -m repro scenarios`` for the
full matrix, or define your own :class:`repro.scenarios.Scenario` as in
``custom_scenario()`` below.

Run:  python examples/fault_tolerance_demo.py
"""

from repro.common.config import ProtocolName
from repro.faults.injector import FaultSchedule
from repro.harness.matrix import MatrixRunner
from repro.scenarios import Scenario, get_scenario


def show(title: str, cell) -> None:
    print(f"== {title} ==")
    print(f"  status={cell.status}  committed={cell.committed}  "
          f"anarchy={cell.anarchy_observed}  "
          f"safety violations={cell.safety_violations}  "
          f"liveness stalls={cell.liveness_violations}")
    if cell.detail:
        print(f"  detail: {cell.detail}")
    print()


def act_one_crashes(runner: MatrixRunner) -> None:
    cell = runner.run_cell(ProtocolName.XPAXOS,
                           get_scenario("rolling-crashes"))
    show("act 1: rolling crashes (the Figure 9 pattern)", cell)
    assert cell.ok, cell.detail


def act_two_partitions(runner: MatrixRunner) -> None:
    cell = runner.run_cell(ProtocolName.XPAXOS,
                           get_scenario("follower-isolated"))
    show("act 2: network fault inside the synchronous group", cell)
    assert cell.ok, cell.detail


def act_three_byzantine(runner: MatrixRunner) -> None:
    cell = runner.run_cell(ProtocolName.XPAXOS,
                           get_scenario("byzantine-primary-data-loss"))
    show("act 3: data-loss fault + fault detection", cell)
    assert cell.ok and cell.detection_ok, cell.detail
    print("  outside anarchy the fault was caught BEFORE it could pair "
          "with enough crashes to break consistency\n")


def custom_scenario() -> Scenario:
    """Rolling a scenario of your own takes a schedule and invariants."""
    return Scenario(
        name="demo-custom",
        description="crash the follower while its link to the passive "
                    "replica flaps, then require full recovery",
        schedule=lambda config: (
            FaultSchedule()
            .crash_for(2_000.0, 1, 800.0)
            .merge(FaultSchedule.flapping_partition(
                "r1", "r2", start_ms=3_200.0, period_ms=600.0, flaps=2))),
        protocols=frozenset({ProtocolName.XPAXOS, ProtocolName.PAXOS}),
        liveness_bound_ms=2_500.0,
    )


def act_four_custom(runner: MatrixRunner) -> None:
    scenario = custom_scenario()
    for protocol in (ProtocolName.XPAXOS, ProtocolName.PAXOS):
        cell = runner.run_cell(protocol, scenario)
        show(f"act 4: a custom scenario on {protocol.value}", cell)
        assert cell.ok, cell.detail


def main() -> None:
    runner = MatrixRunner(seed=1)
    act_one_crashes(runner)
    act_two_partitions(runner)
    act_three_byzantine(runner)
    act_four_custom(runner)
    print("all acts completed with total order intact")


if __name__ == "__main__":
    main()
