#!/usr/bin/env python3
"""Fault-tolerance demo: crashes, partitions, and a Byzantine replica.

Three acts, all on the paper's t = 1 geo deployment:

1. **Crash faults** -- the Figure 9 pattern: crash the follower, then the
   primary, then the passive replica; watch view changes keep the service
   alive.
2. **Network faults** -- partition the synchronous group; XPaxos rotates
   to a connected group.
3. **A non-crash fault** -- a data-loss adversary on the primary; with
   fault detection enabled, the view change convicts it (Section 4.4).

Run:  python examples/fault_tolerance_demo.py
"""

from repro.common.config import ClusterConfig, ProtocolName, WorkloadConfig
from repro.faults.adversary import DataLossAdversary
from repro.faults.checker import SafetyChecker
from repro.faults.injector import FaultInjector, FaultSchedule
from repro.protocols.registry import build_cluster
from repro.workloads.clients import ClosedLoopDriver


def build(use_fd=False, seed=1):
    config = ClusterConfig(
        t=1, protocol=ProtocolName.XPAXOS,
        delta_ms=50.0, request_retransmit_ms=200.0,
        view_change_timeout_ms=500.0, batch_timeout_ms=2.0,
        use_fault_detection=use_fd)
    return build_cluster(config, num_clients=4, seed=seed)


def drive(runtime, duration_ms):
    driver = ClosedLoopDriver(
        runtime, WorkloadConfig(num_clients=4, request_size=128,
                                duration_ms=duration_ms, warmup_ms=100.0))
    driver.run()
    return driver


def act_one_crashes() -> None:
    print("== act 1: rolling crashes (the Figure 9 pattern) ==")
    runtime = build()
    schedule = (FaultSchedule()
                .crash_for(2_000.0, 1, 1_000.0)   # follower
                .crash_for(5_000.0, 0, 1_000.0)   # primary
                .crash_for(8_000.0, 2, 1_000.0))  # passive
    FaultInjector(runtime).arm(schedule)
    checker = SafetyChecker(runtime)
    driver = drive(runtime, 12_000.0)
    checker.assert_safe()
    print(f"  committed {driver.throughput.total} requests through "
          f"three crashes")
    print(f"  final views: {[r.view for r in runtime.replicas]} "
          f"(view changed only when an ACTIVE replica crashed)")


def act_two_partitions() -> None:
    print("\n== act 2: network fault inside the synchronous group ==")
    runtime = build(seed=2)
    schedule = (FaultSchedule()
                .partition(2_000.0, "r0", "r1")
                .heal(5_000.0, "r0", "r1"))
    FaultInjector(runtime).arm(schedule)
    checker = SafetyChecker(runtime)
    driver = drive(runtime, 8_000.0)
    checker.assert_safe()
    views = {r.view for r in runtime.replicas}
    print(f"  committed {driver.throughput.total}; views now {views}")
    print("  the group (r0,r1) could not talk -> XPaxos rotated to a "
          "connected group")


def act_three_byzantine() -> None:
    print("\n== act 3: data-loss fault + fault detection ==")
    runtime = build(use_fd=True, seed=3)
    # The primary will lose its logs above sequence number 1.
    runtime.replica(0).byzantine = DataLossAdversary(keep_upto=1)
    FaultInjector(runtime).arm(
        FaultSchedule().crash_for(2_000.0, 1, 1_000.0))
    checker = SafetyChecker(runtime)
    checker.declare_non_crash_faulty(0)
    driver = drive(runtime, 8_000.0)
    detected = {i for i in range(3)
                if 0 in runtime.replica(i).detected_faulty}
    print(f"  committed {driver.throughput.total}")
    print(f"  replicas that convicted the faulty primary: "
          f"{sorted('r%d' % i for i in detected)}")
    assert detected, "fault detection failed to convict"
    print("  outside anarchy the fault was caught BEFORE it could pair "
          "with enough crashes to break consistency")


def main() -> None:
    act_one_crashes()
    act_two_partitions()
    act_three_byzantine()
    print("\nall three acts completed with total order intact")


if __name__ == "__main__":
    main()
