#!/usr/bin/env python3
"""Geo-replicated microbenchmark: a miniature Figure 7a.

Sweeps closed-loop clients over the paper's EC2 deployment (Table 3
latencies, Table 4 placement) for XPaxos, Paxos, PBFT and Zyzzyva, printing
the latency-vs-throughput curve for each -- the experiment behind the
paper's headline claim that XFT costs no more than CFT in the WAN.

Run:  python examples/geo_replicated_bench.py
"""

from repro.common.config import ProtocolName, WorkloadConfig
from repro.crypto.costs import CostModel
from repro.harness.configs import paper_config
from repro.harness.runner import ExperimentRunner
from repro.net.bandwidth import BandwidthModel
from repro.net.latency import LatencyModel

CLIENT_COUNTS = (8, 32, 96)
PROTOCOLS = (ProtocolName.XPAXOS, ProtocolName.PAXOS, ProtocolName.PBFT,
             ProtocolName.ZYZZYVA)


def main() -> None:
    runner = ExperimentRunner(
        latency_factory=lambda seed: LatencyModel.ec2(seed=seed),
        bandwidth_factory=lambda: BandwidthModel(default_rate=4_000.0),
        cost_model=CostModel(),
    )

    print("1/0 microbenchmark (1 kB requests), t = 1, clients in CA\n")
    header = f"{'clients':>8}"
    for protocol in PROTOCOLS:
        header += f" | {protocol.value:>21}"
    print(header)
    print(" " * 8 + " | ".join(
        [""] + [f"{'kops/s':>9} {'lat ms':>11}" for _ in PROTOCOLS]))

    curves = {}
    for protocol in PROTOCOLS:
        config = paper_config(protocol, t=1,
                              request_retransmit_ms=20_000.0,
                              view_change_timeout_ms=10_000.0)
        curves[protocol] = [
            runner.run_point(config, WorkloadConfig(
                num_clients=clients, request_size=1024,
                duration_ms=4_000.0, warmup_ms=500.0, client_site="CA"))
            for clients in CLIENT_COUNTS
        ]

    for index, clients in enumerate(CLIENT_COUNTS):
        row = f"{clients:>8}"
        for protocol in PROTOCOLS:
            result = curves[protocol][index]
            row += (f" | {result.throughput_kops:9.3f} "
                    f"{result.mean_latency_ms:11.1f}")
        print(row)

    print("\npeaks:")
    for protocol in PROTOCOLS:
        best = max(r.throughput_kops for r in curves[protocol])
        cpu = max(r.cpu_percent_most_loaded for r in curves[protocol])
        print(f"  {protocol.value:>8}: {best:6.3f} kops/s "
              f"(primary CPU {cpu:5.1f}%)")

    xpaxos = max(r.throughput_kops for r in curves[ProtocolName.XPAXOS])
    pbft = max(r.throughput_kops for r in curves[ProtocolName.PBFT])
    print(f"\nXPaxos / PBFT peak ratio: {xpaxos / pbft:.2f}x "
          "(the paper reports a similar advantage on EC2)")


if __name__ == "__main__":
    main()
