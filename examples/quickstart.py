#!/usr/bin/env python3
"""Quickstart: replicate a key-value store with XPaxos in ~40 lines.

Builds the paper's t = 1 deployment (3 replicas: CA primary, VA follower,
JP passive), runs client operations against it, crashes the follower to
force a view change, and shows that committed state survives.

Run:  python examples/quickstart.py
"""

from repro.common.config import ClusterConfig, ProtocolName
from repro.protocols.registry import build_cluster
from repro.smr.app import KVStore


def call(runtime, client, op, timeout_ms=5_000.0):
    """Invoke one operation and wait (virtual time) for its commit."""
    done = []
    client.on_result = done.append
    client.propose(op, size_bytes=64)
    runtime.sim.run(until=runtime.sim.now + timeout_ms)
    if not done:
        raise RuntimeError(f"operation {op!r} did not commit in time")
    return done[0]


def main() -> None:
    config = ClusterConfig(
        t=1,
        protocol=ProtocolName.XPAXOS,
        delta_ms=50.0,                 # LAN-ish Delta for the demo
        request_retransmit_ms=200.0,
        view_change_timeout_ms=500.0,
        batch_timeout_ms=2.0,
    )
    runtime = build_cluster(config, num_clients=1, app_factory=KVStore)
    client = runtime.clients[0]

    print("== fault-free operation ==")
    print("put paper xft ->", call(runtime, client, ("put", "paper", "xft")))
    print("put venue osdi16 ->",
          call(runtime, client, ("put", "venue", "osdi16")))
    print("get paper ->", call(runtime, client, ("get", "paper")))

    print("\n== crash the follower (r1): XPaxos changes views ==")
    runtime.replica(1).crash()
    print("get venue ->", call(runtime, client, ("get", "venue")))
    views = [r.view for r in runtime.replicas if not r.crashed]
    print(f"views after recovery: {views} (synchronous group rotated)")

    print("\n== recover r1; it catches up via lazy replication ==")
    runtime.replica(1).recover()
    print("cas venue osdi16->osdi'16 ->",
          call(runtime, client, ("cas", "venue", "osdi16", "osdi'16")))
    runtime.sim.run(until=runtime.sim.now + 2_000.0)

    digests = {replica.app.state_digest().hex()[:12]
               for replica in runtime.replicas
               if replica.committed_requests > 0}
    print(f"state digests across replicas: {digests}")
    assert len(digests) == 1, "replicas diverged!"
    print("\nall replicas agree -- total order held across the view change")


if __name__ == "__main__":
    main()
