#!/usr/bin/env python3
"""Reliability calculator: the Section 6 analysis as a tool.

Given per-machine nines (benign / correct / synchronous / available),
prints the nines of consistency and availability for CFT, XPaxos and BFT,
reproduces the paper's two worked examples, and renders excerpts of
Tables 5-8.

Run:  python examples/reliability_analysis.py
"""

from repro.reliability.models import (
    nines_of,
    p_bft_consistent,
    p_cft_consistent,
    p_xft_consistent,
)
from repro.reliability.tables import (
    availability_table,
    consistency_table,
    format_availability_table,
    format_consistency_table,
)


def worked_examples() -> None:
    print("== the paper's worked examples (Section 6.1) ==\n")

    print("Example 1: p_benign=0.9999, p_correct=p_synchrony=0.999")
    print("  (one in ten machine faults is non-crash)")
    cft = nines_of(p_cft_consistent(0.9999, 3))
    xft = nines_of(p_xft_consistent(0.9999, 0.999, 0.999, t=1))
    bft = nines_of(p_bft_consistent(0.9999, t=1))
    print(f"  nines of consistency: CFT={cft}  XPaxos={xft}  BFT={bft}")
    print(f"  -> XPaxos adds {xft - cft} nines over CFT at ZERO extra "
          "replicas\n")

    print("Example 2: p_benign=p_synchrony=0.9999, p_correct=0.999")
    print("  (a more reliable network)")
    cft = nines_of(p_cft_consistent(0.9999, 3))
    xft = nines_of(p_xft_consistent(0.9999, 0.999, 0.9999, t=1))
    bft = nines_of(p_bft_consistent(0.9999, t=1))
    print(f"  nines of consistency: CFT={cft}  XPaxos={xft}  BFT={bft}")
    print(f"  -> a better network buys XPaxos {xft - cft} nines over CFT\n")


def crossover() -> None:
    print("== when does XFT beat BFT on consistency? (Section 6.1.2) ==\n")
    print("For t=1: whenever p_available > p_benign^1.5.  For instance:")
    p_benign = 0.9999
    for p_correct, p_synchrony in ((0.99999, 0.99999), (0.999, 0.999)):
        p_available = p_correct * p_synchrony
        xft = p_xft_consistent(p_benign, min(p_correct, p_benign),
                               p_synchrony, t=1)
        bft = p_bft_consistent(p_benign, t=1)
        winner = "XPaxos" if xft > bft else "BFT"
        print(f"  p_av={p_available:.6f} vs p_benign^1.5="
              f"{p_benign ** 1.5:.6f}: {winner} is more consistent")
    print()


def table_excerpts() -> None:
    print("== Table 5 excerpt: nines of consistency, t = 1 ==")
    rows = [r for r in consistency_table(1) if r.nines_benign in (4, 5)]
    print(format_consistency_table(rows))
    print("\n== Table 7 excerpt: nines of availability, t = 1 ==")
    rows = [r for r in availability_table(1) if r.nines_available <= 3]
    print(format_availability_table(rows))


def main() -> None:
    worked_examples()
    crossover()
    table_excerpts()


if __name__ == "__main__":
    main()
