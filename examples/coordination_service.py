#!/usr/bin/env python3
"""A ZooKeeper-style coordination service replicated with XPaxos.

Demonstrates the macro-benchmark application (Section 5.5) as a user would
actually consume it: configuration storage, ephemeral nodes for liveness,
and sequential znodes for leader election -- all ordered by XPaxos.

Run:  python examples/coordination_service.py
"""

from repro.common.config import ClusterConfig, ProtocolName
from repro.protocols.registry import build_cluster
from repro.zk.service import CoordinationService


def call(runtime, client, op, timeout_ms=5_000.0):
    done = []
    client.on_result = done.append
    client.propose(op, size_bytes=128)
    runtime.sim.run(until=runtime.sim.now + timeout_ms)
    if not done:
        raise RuntimeError(f"operation {op!r} did not commit")
    return done[0]


def main() -> None:
    config = ClusterConfig(
        t=1, protocol=ProtocolName.XPAXOS,
        delta_ms=50.0, request_retransmit_ms=200.0,
        view_change_timeout_ms=500.0, batch_timeout_ms=2.0)
    runtime = build_cluster(config, num_clients=3,
                            app_factory=CoordinationService)
    alice, bob, carol = runtime.clients

    print("== configuration store ==")
    print(call(runtime, alice, ("create", "/config", b"")))
    print(call(runtime, alice, ("create", "/config/db", b"host=db1")))
    print(call(runtime, bob, ("get", "/config/db")))
    print(call(runtime, bob, ("set", "/config/db", b"host=db2", 0)))
    status = call(runtime, carol, ("set", "/config/db", b"host=db3", 0))
    print(f"carol's stale-version write: {status} (optimistic locking)")

    print("\n== leader election with sequential znodes ==")
    print(call(runtime, alice, ("create", "/election", b"")))
    seats = {}
    for name, client in (("alice", alice), ("bob", bob),
                         ("carol", carol)):
        status, path = call(runtime, client,
                            ("create", "/election/seat-", name.encode(),
                             0, True))
        seats[name] = path
        print(f"  {name} -> {path}")
    _, children = call(runtime, alice, ("children", "/election"))
    leader = min(children)
    winner = [n for n, p in seats.items() if p.endswith(leader)][0]
    print(f"  lowest sequence number wins: {winner} is the leader")

    print("\n== ephemeral nodes track liveness ==")
    print(call(runtime, bob, ("create", "/workers/w1", b"", 42)),
          "(session 42)") if call(
              runtime, alice, ("create", "/workers", b""))[0] == "ok" \
        else None
    print(call(runtime, carol, ("exists", "/workers/w1")))
    print("session 42 expires ->",
          call(runtime, alice, ("expire", 42)))
    print("exists after expiry ->",
          call(runtime, carol, ("exists", "/workers/w1")))

    print("\n== the tree is identical on every replica ==")
    runtime.sim.run(until=runtime.sim.now + 2_000.0)
    digests = {r.app.state_digest().hex()[:12] for r in runtime.replicas
               if r.committed_requests > 0}
    print(f"state digests: {digests}")
    assert len(digests) == 1


if __name__ == "__main__":
    main()
